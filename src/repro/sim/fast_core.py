"""Steady-state SMT core throughput solver (the "fast engine").

A mean-value-analysis model of an out-of-order SMT core.  For each
hardware thread ``t`` running stream parameters ``S_t``:

1. *Issue capability*: with a window share from the SMT partition, the
   thread can issue ``r_t = min(ilp * ilp_scale, issue_width)``
   instructions per active cycle.
2. *Stalls*: each instruction charges, on average, memory-stall cycles
   (from the cache model, divided by MLP) and branch-mispredict refill
   cycles.  The thread's unconstrained throughput is
   ``x_t = 1 / (1 / r_t + stall_t)`` — the classic interval model.
3. *SMT overlap*: while one thread stalls, others issue; the core's
   unconstrained throughput is simply ``sum_t x_t``.
4. *Structural limits*: per-port capacities and the shared dispatch
   width cap aggregate issue at the structural ceiling ``lam * demand``;
   the contended capacity is divided among threads by hardware-thread
   priority weight (uniform priorities: everyone throttles by ``lam``).
5. *Dispatch held* (the SMTsm's second factor) combines the two causes
   the paper names: issue-queue back-pressure from long-latency misses
   and structural port saturation.

The solver is deliberately closed-form per evaluation: a full
benchmark-suite sweep is thousands of core evaluations, each a handful
of numpy operations (see the HPC guides' "vectorize, don't iterate").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.machine import Architecture
from repro.obs import get_tracer
from repro.sim.branch import SHARING_PENALTY_PER_THREAD, BranchModel
from repro.sim.cache import (
    MAX_PRESSURE_SCALE,
    MAX_RELATIVE_PRESSURE,
    MIN_RELATIVE_PRESSURE,
    CacheModel,
    EffectiveMissRates,
    SharingContext,
    corunner_pressure,
)
from repro.sim.stream import (
    REF_L1_KB,
    REF_L2_KB,
    REF_L3_MB_PER_THREAD,
    StreamParams,
)
from repro.arch.classes import InstrClass, N_CLASSES

# NOTE on the saturated regime: an earlier formulation charged an extra
# scheduling-conflict penalty growing with oversubscription depth
# (x = x_want * lambda ** 1.3).  The property suite caught that this
# makes core throughput *non-monotone* in per-thread demand by up to
# ~9% — slowing memory could raise IPC.  Any penalty that deepens with
# backlog has that defect, so the model now issues exactly the
# structural ceiling (lambda * demand, a demand-invariant quantity):
# a backlogged scheduler has more ready candidates, not fewer.
#: Probability that a long-latency stall backs the thread's issue-queue
#: share up to the dispatcher (short stalls drain before dispatch blocks).
QUEUE_FILL_FACTOR = 0.85


#: POWER-style hardware thread priorities: the neutral level, and the
#: per-step weight ratio of the decode/dispatch slot allocator.
NEUTRAL_PRIORITY = 4
PRIORITY_WEIGHT_BASE = 2.0
MIN_PRIORITY, MAX_PRIORITY = 0, 7


def priority_weight(priority: int) -> float:
    """Relative share of contended issue capacity at a priority level.

    POWER5+ cores allocate decode cycles between threads with a ratio
    that grows geometrically in the priority difference (paper §I:
    "dynamically managed levels of priority for hardware threads");
    weight = base ** (priority - neutral) reproduces that behaviour with
    equal shares at the neutral level.
    """
    if not (MIN_PRIORITY <= priority <= MAX_PRIORITY):
        raise ValueError(
            f"priority must be in [{MIN_PRIORITY}, {MAX_PRIORITY}], got {priority}"
        )
    return float(PRIORITY_WEIGHT_BASE ** (priority - NEUTRAL_PRIORITY))


@dataclass(frozen=True)
class CoreInput:
    """One core's workload at one instant."""

    arch: Architecture
    smt_level: int                       # hardware mode the core is in
    streams: Tuple[StreamParams, ...]    # one per *active* hardware thread
    threads_per_chip: int                # for L3 sharing
    mem_latency_mult: float = 1.0        # from the bandwidth fixed point
    extra_mem_latency: float = 0.0       # from the NUMA model
    priorities: Optional[Tuple[int, ...]] = None  # hw thread priorities (0-7)

    def __post_init__(self):
        self.arch.validate_smt_level(self.smt_level)
        if not self.streams:
            raise ValueError("a core needs at least one active stream")
        if len(self.streams) > self.smt_level:
            raise ValueError(
                f"{len(self.streams)} streams exceed SMT{self.smt_level} contexts"
            )
        if self.mem_latency_mult < 1.0:
            raise ValueError(f"mem_latency_mult must be >= 1, got {self.mem_latency_mult}")
        if self.extra_mem_latency < 0:
            raise ValueError(f"extra_mem_latency must be >= 0, got {self.extra_mem_latency}")
        if self.threads_per_chip < len(self.streams):
            raise ValueError("threads_per_chip cannot be below the core's own threads")
        if self.priorities is not None:
            if len(self.priorities) != len(self.streams):
                raise ValueError(
                    f"{len(self.priorities)} priorities for {len(self.streams)} streams"
                )
            for p in self.priorities:
                priority_weight(p)  # validates the range

    def weights(self) -> np.ndarray:
        if self.priorities is None:
            return np.ones(len(self.streams))
        return np.array([priority_weight(p) for p in self.priorities])


@dataclass(frozen=True)
class CoreOutput:
    """Steady-state solution for one core."""

    ipc: np.ndarray                    # per-thread committed IPC
    port_utilization: np.ndarray       # per-port fraction of capacity used
    port_scale: float                  # structural throttle lambda (1 = no saturation)
    dispatch_held_fraction: float      # of core cycles
    stall_fraction: np.ndarray         # per-thread fraction of cycles stalled (all causes)
    long_stall_fraction: np.ndarray    # per-thread fraction stalled on L3/memory
    miss_rates: Tuple[EffectiveMissRates, ...]
    branch_rate: np.ndarray            # effective mispredicts per branch, per thread
    traffic_bytes_per_cycle: float     # core DRAM traffic

    @property
    def core_ipc(self) -> float:
        return float(self.ipc.sum())


def _water_fill(caps: np.ndarray, weights: np.ndarray, budget: float) -> np.ndarray:
    """Weight-proportional allocation of ``budget``, capped per thread.

    Threads whose weighted share exceeds their unconstrained rate are
    pinned at that rate; the surplus is redistributed among the rest.
    """
    x = np.zeros_like(caps)
    active = np.ones(len(caps), dtype=bool)
    remaining = float(budget)
    for _ in range(len(caps)):
        if not active.any() or remaining <= 0:
            break
        share = remaining * weights[active] / weights[active].sum()
        capped = share >= caps[active] - 1e-15
        idx = np.flatnonzero(active)
        if not capped.any():
            x[idx] = share
            break
        pinned = idx[capped]
        x[pinned] = caps[pinned]
        remaining -= float(caps[pinned].sum())
        active[pinned] = False
    return np.minimum(x, caps)


def solve_core(inp: CoreInput) -> CoreOutput:
    """Solve the steady state of one SMT core."""
    arch = inp.arch
    k = len(inp.streams)
    resources = arch.partition.thread_resources(inp.smt_level)
    cache = CacheModel(arch)
    branch = BranchModel(arch)

    n = len(inp.streams)
    r = np.empty(n)
    stall = np.empty(n)
    long_stall = np.empty(n)
    br_rate = np.empty(n)
    traffic_bpi = np.empty(n)
    rates_list = []

    for t, stream in enumerate(inp.streams):
        # Private-cache pressure is partner-aware: who shares the core
        # matters, not just how many (reduces to the count law for
        # homogeneous SPMD threads).
        others = [s.memory for u, s in enumerate(inp.streams) if u != t]
        sharing = SharingContext(
            threads_per_core=k,
            threads_per_chip=inp.threads_per_chip,
            core_pressure=corunner_pressure(stream.memory, others),
        )
        rates = cache.effective_rates(stream.memory, sharing)
        rates_list.append(rates)
        mem_stall = cache.memory_stall_per_instruction(
            rates, stream, inp.mem_latency_mult, inp.extra_mem_latency
        )
        long_stall[t] = cache.long_stall_per_instruction(
            rates, stream, inp.mem_latency_mult, inp.extra_mem_latency
        )
        br_rate[t] = branch.effective_rate(stream.branch_mispredict_rate, k)
        br_stall = branch.stall_per_instruction(stream.mix, br_rate[t])
        r[t] = min(
            stream.ilp * resources.ilp_scale,
            float(arch.partition.issue_width),
        )
        stall[t] = mem_stall + br_stall
        traffic_bpi[t] = cache.traffic_bytes_per_instruction(rates, stream.memory)

    # Interval model: unconstrained per-thread throughput.
    x_want = 1.0 / (1.0 / r + stall)

    # Structural limits: ports and the shared dispatch width.
    routing = arch.topology.routing_matrix
    demand = np.zeros(arch.topology.n_ports)
    for t, stream in enumerate(inp.streams):
        demand += x_want[t] * (routing @ stream.mix.vector)
    lam_port = arch.topology.saturation_scale(demand)
    lam_fe = min(1.0, arch.partition.core_dispatch_width(inp.smt_level) / max(x_want.sum(), 1e-12))
    lam = min(lam_port, lam_fe)

    if lam >= 1.0:
        x = x_want.copy()
    else:
        # The structural ceiling (lambda * aggregate demand — invariant
        # to uniform demand scaling) is divided among the hardware
        # threads by priority weight, water-filling with each thread
        # capped at its unconstrained rate.  Uniform weights reduce to
        # scaling everyone by lambda.
        x = _water_fill(x_want, inp.weights(), lam * float(x_want.sum()))
    port_util = np.zeros(arch.topology.n_ports)
    for t, stream in enumerate(inp.streams):
        port_util += x[t] * (routing @ stream.mix.vector)
    port_util = port_util / arch.topology.capacities

    # Dispatch-held: queue back-pressure from long stalls, plus the
    # structural component.  Both are per-cycle core-level fractions.
    long_frac = np.clip(x * long_stall, 0.0, 1.0)
    held_queue = float(np.mean(long_frac) * QUEUE_FILL_FACTOR)
    held_port = 1.0 - lam
    dispatch_held = 1.0 - (1.0 - held_queue) * (1.0 - held_port)

    stall_frac = np.clip(x * stall, 0.0, 1.0)
    traffic = float(np.sum(x * traffic_bpi))

    return CoreOutput(
        ipc=x,
        port_utilization=port_util,
        port_scale=float(lam),
        dispatch_held_fraction=float(np.clip(dispatch_held, 0.0, 1.0)),
        stall_fraction=stall_frac,
        long_stall_fraction=long_frac,
        miss_rates=tuple(rates_list),
        branch_rate=br_rate,
        traffic_bytes_per_cycle=traffic,
    )


@dataclass(frozen=True)
class BatchSolution:
    """Raw padded arrays for one vectorized solve of a :class:`CoreBatch`.

    Thread axes are padded to the widest scenario in the batch; padded
    slots hold zeros.  The arrays are the inner-loop currency of the
    bandwidth bisection — :meth:`CoreBatch.materialize` turns the final
    one into per-scenario :class:`CoreOutput` objects.
    """

    x: np.ndarray              # (B, K) per-thread IPC
    lam: np.ndarray            # (B,) structural throttle
    port_util: np.ndarray      # (B, P)
    dispatch_held: np.ndarray  # (B,)
    stall_frac: np.ndarray     # (B, K)
    long_frac: np.ndarray      # (B, K)
    traffic: np.ndarray        # (B,) DRAM bytes per core cycle


def _water_fill_batch(
    caps: np.ndarray,
    weights: np.ndarray,
    budget: np.ndarray,
    mask: np.ndarray,
    needs: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`_water_fill` over the rows selected by ``needs``.

    Runs every scenario's pin-and-redistribute rounds in lockstep; a row
    whose allocation settles (no thread capped) is frozen while the rest
    keep iterating.  Mirrors the scalar loop arithmetic exactly.
    """
    x = np.zeros_like(caps)
    active = mask & needs[:, None]
    remaining = np.where(needs, budget, 0.0)
    open_rows = needs.copy()
    for _ in range(caps.shape[1]):
        rows = open_rows & active.any(axis=1) & (remaining > 0)
        if not rows.any():
            break
        w_act = np.where(active, weights, 0.0)
        share = (
            remaining[:, None] * w_act / np.maximum(w_act.sum(axis=1), 1e-300)[:, None]
        )
        capped = active & (share >= caps - 1e-15)
        settle = rows & ~capped.any(axis=1)
        if settle.any():
            x = np.where(settle[:, None] & active, share, x)
            open_rows = open_rows & ~settle
        pin = capped & rows[:, None]
        if pin.any():
            x = np.where(pin, caps, x)
            remaining = remaining - np.where(pin, caps, 0.0).sum(axis=1)
            active = active & ~pin
    return np.minimum(x, caps)


class CoreBatch:
    """Vectorized solver state for many independent core scenarios.

    Stacks the :class:`StreamParams` of every (workload, SMT level,
    latency-multiplier) scenario into padded numpy arrays and solves
    them with one set of array operations per call.  All scenarios must
    share one :class:`Architecture` *instance* (the routing matrix and
    partition tables are hoisted out of the per-scenario math).

    Everything that does not depend on the memory-latency multiplier —
    cache sharing, branch penalties, issue capability, port routing —
    is precomputed at construction; the memory stall is linear in the
    multiplier (``stall = base + coef * mult``), so the bandwidth
    bisection re-solves the entire batch per step with ~15 array ops
    instead of one :func:`solve_core` call per scenario.
    """

    def __init__(self, inputs: Sequence[CoreInput]):
        inputs = tuple(inputs)
        if not inputs:
            raise ValueError("CoreBatch needs at least one scenario")
        arch = inputs[0].arch
        for inp in inputs:
            if inp.arch is not arch:
                raise ValueError(
                    "all scenarios in a CoreBatch must share one Architecture instance"
                )
        self.arch = arch
        self.inputs = inputs
        caches = arch.caches
        B = len(inputs)
        K = max(len(inp.streams) for inp in inputs)
        P = arch.topology.n_ports

        tracer = get_tracer()
        if tracer.enabled:
            # Padding waste: slots allocated for the widest scenario but
            # masked off for narrower ones (wasted array work per solve).
            total_threads = sum(len(inp.streams) for inp in inputs)
            tracer.add("core_batch.batches")
            tracer.add("core_batch.scenarios", B)
            tracer.add("core_batch.slots", B * K)
            tracer.add("core_batch.padded_slots", B * K - total_threads)

        self.n = np.array([len(inp.streams) for inp in inputs], dtype=float)
        mask = np.zeros((B, K), dtype=bool)
        ilp = np.zeros((B, K))
        mlp = np.ones((B, K))
        br_base = np.zeros((B, K))
        l1 = np.zeros((B, K))
        l2 = np.zeros((B, K))
        l3 = np.zeros((B, K))
        alpha = np.zeros((B, K))
        d = np.zeros((B, K))
        wb = np.ones((B, K))
        weights = np.zeros((B, K))
        mix = np.zeros((B, K, N_CLASSES))
        ilp_scale = np.empty(B)
        disp_w = np.empty(B)
        tpc = np.empty(B)
        extra = np.empty(B)

        for b, inp in enumerate(inputs):
            k = len(inp.streams)
            mask[b, :k] = True
            resources = arch.partition.thread_resources(inp.smt_level)
            ilp_scale[b] = resources.ilp_scale
            disp_w[b] = arch.partition.core_dispatch_width(inp.smt_level)
            tpc[b] = inp.threads_per_chip
            extra[b] = inp.extra_mem_latency
            weights[b, :k] = inp.weights()
            first = inp.streams[0]
            if all(s is first for s in inp.streams):
                # Homogeneous (SPMD) scenario: one extraction, broadcast.
                mem = first.memory
                ilp[b, :k] = first.ilp
                mlp[b, :k] = first.mlp
                br_base[b, :k] = first.branch_mispredict_rate
                l1[b, :k] = mem.l1_mpki
                l2[b, :k] = mem.l2_mpki
                l3[b, :k] = mem.l3_mpki
                alpha[b, :k] = mem.locality_alpha
                d[b, :k] = mem.data_sharing
                wb[b, :k] = mem.writeback_factor
                mix[b, :k] = first.mix.vector
            else:
                for t, s in enumerate(inp.streams):
                    mem = s.memory
                    ilp[b, t] = s.ilp
                    mlp[b, t] = s.mlp
                    br_base[b, t] = s.branch_mispredict_rate
                    l1[b, t] = mem.l1_mpki
                    l2[b, t] = mem.l2_mpki
                    l3[b, t] = mem.l3_mpki
                    alpha[b, t] = mem.locality_alpha
                    d[b, t] = mem.data_sharing
                    wb[b, t] = mem.writeback_factor
                    mix[b, t] = s.mix.vector

        self._mask = mask
        self._weights = weights
        self._disp_w = disp_w

        # Partner-aware private-cache pressure (corunner_pressure): each
        # co-runner displaces the victim in proportion to relative
        # footprint heat; the clipped self-ratio is exactly 1, so it is
        # subtracted back out.
        heat = np.where(mask, l1, 0.0) + 1e-3
        ratio = np.clip(
            heat[:, None, :] / heat[:, :, None],
            MIN_RELATIVE_PRESSURE,
            MAX_RELATIVE_PRESSURE,
        )
        contrib = (1.0 - d)[:, None, :] * ratio * mask[:, None, :]
        pressure = 1.0 + contrib.sum(axis=2) - (1.0 - d)
        pressure = np.where(mask, pressure, 1.0)

        inv_max = 1.0 / MAX_PRESSURE_SCALE
        scale_l1 = np.clip(
            (REF_L1_KB / (caches.l1d_kb / pressure)) ** alpha, inv_max, MAX_PRESSURE_SCALE
        )
        scale_l2 = np.clip(
            (REF_L2_KB / (caches.l2_kb / pressure)) ** alpha, inv_max, MAX_PRESSURE_SCALE
        )
        k_chip = 1.0 + (tpc[:, None] - 1.0) * (1.0 - d)
        c_l3 = caches.l3_mb * 1024.0 / k_chip
        scale_l3 = np.clip(
            (REF_L3_MB_PER_THREAD * 1024.0 / c_l3) ** alpha, inv_max, MAX_PRESSURE_SCALE
        )
        l1e = l1 * scale_l1
        l2e = np.minimum(l2 * scale_l2, l1e)
        l3e = np.minimum(l3 * scale_l3, l2e)
        self._l1e, self._l2e, self._l3e = l1e, l2e, l3e

        # Memory stall is linear in the latency multiplier.
        l2hit = l1e - l2e
        l3hit = l2e - l3e
        inv_kmlp = np.where(mask, 1.0 / (1000.0 * mlp), 0.0)
        self._mem_coef = l3e * caches.lat_mem * inv_kmlp
        self._long_base = (l3hit * caches.lat_l3 + l3e * extra[:, None]) * inv_kmlp
        mem_base = (
            l2hit * caches.lat_l2 + l3hit * caches.lat_l3 + l3e * extra[:, None]
        ) * inv_kmlp

        br_rate = np.minimum(
            br_base * (1.0 + SHARING_PENALTY_PER_THREAD * (self.n[:, None] - 1.0)), 1.0
        )
        self._br_rate = np.where(mask, br_rate, 0.0)
        br_stall = mix[:, :, InstrClass.BRANCH] * self._br_rate * arch.branch_penalty
        self._stall_base = mem_base + br_stall

        r = np.minimum(ilp * ilp_scale[:, None], float(arch.partition.issue_width))
        self._inv_r = np.where(mask, 1.0 / np.where(mask, r, 1.0), 0.0)

        routing = arch.topology.routing_matrix
        self._port_vec = np.einsum("btc,pc->btp", mix, routing)  # (B, K, P)
        self._caps = arch.topology.capacities
        self._traffic_bpi = l3e / 1000.0 * caches.line_bytes * wb * mask

    def __len__(self) -> int:
        return len(self.inputs)

    def solve(self, mults: np.ndarray) -> BatchSolution:
        """Solve every scenario at its own memory-latency multiplier."""
        get_tracer().add("core_batch.solves")
        mults = np.asarray(mults, dtype=float)
        if mults.shape != (len(self.inputs),):
            raise ValueError(
                f"need one multiplier per scenario: {mults.shape} vs {len(self.inputs)}"
            )
        mask = self._mask
        stall = self._stall_base + self._mem_coef * mults[:, None]
        denom = self._inv_r + stall
        x_want = np.where(mask, 1.0 / np.where(mask, denom, 1.0), 0.0)

        demand = np.einsum("bt,btp->bp", x_want, self._port_vec)
        with np.errstate(divide="ignore"):
            ratios = np.where(
                demand > 0, self._caps[None, :] / np.maximum(demand, 1e-300), np.inf
            )
        lam_port = np.minimum(1.0, ratios.min(axis=1))
        sum_x = x_want.sum(axis=1)
        lam_fe = np.minimum(1.0, self._disp_w / np.maximum(sum_x, 1e-12))
        lam = np.minimum(lam_port, lam_fe)

        needs = lam < 1.0
        if needs.any():
            x_fill = _water_fill_batch(x_want, self._weights, lam * sum_x, mask, needs)
            x = np.where(needs[:, None], x_fill, x_want)
        else:
            x = x_want

        port_util = np.einsum("bt,btp->bp", x, self._port_vec) / self._caps[None, :]
        long_frac = np.clip(x * (self._long_base + self._mem_coef * mults[:, None]), 0.0, 1.0)
        held_queue = long_frac.sum(axis=1) / self.n * QUEUE_FILL_FACTOR
        dispatch_held = np.clip(1.0 - (1.0 - held_queue) * lam, 0.0, 1.0)
        stall_frac = np.clip(x * stall, 0.0, 1.0)
        traffic = (x * self._traffic_bpi).sum(axis=1)
        return BatchSolution(
            x=x,
            lam=lam,
            port_util=port_util,
            dispatch_held=dispatch_held,
            stall_frac=stall_frac,
            long_frac=long_frac,
            traffic=traffic,
        )

    def materialize(self, solution: BatchSolution) -> List[CoreOutput]:
        """Expand a raw batch solution into per-scenario :class:`CoreOutput`s."""
        outputs: List[CoreOutput] = []
        for b, inp in enumerate(self.inputs):
            k = len(inp.streams)
            rates = tuple(
                EffectiveMissRates(
                    l1_mpki=float(self._l1e[b, t]),
                    l2_mpki=float(self._l2e[b, t]),
                    l3_mpki=float(self._l3e[b, t]),
                )
                for t in range(k)
            )
            outputs.append(
                CoreOutput(
                    ipc=solution.x[b, :k].copy(),
                    port_utilization=solution.port_util[b].copy(),
                    port_scale=float(solution.lam[b]),
                    dispatch_held_fraction=float(solution.dispatch_held[b]),
                    stall_fraction=solution.stall_frac[b, :k].copy(),
                    long_stall_fraction=solution.long_frac[b, :k].copy(),
                    miss_rates=rates,
                    branch_rate=self._br_rate[b, :k].copy(),
                    traffic_bytes_per_cycle=float(solution.traffic[b]),
                )
            )
        return outputs

    def outputs(self, mults: np.ndarray) -> List[CoreOutput]:
        return self.materialize(self.solve(mults))


def solve_core_batch(inputs: Sequence[CoreInput]) -> List[CoreOutput]:
    """Solve many independent core scenarios in one vectorized pass.

    Semantically equivalent to ``[solve_core(inp) for inp in inputs]``
    (to floating-point round-off; the property suite pins the agreement
    at <= 1e-9 relative error).  All inputs must share one
    :class:`Architecture` instance.
    """
    inputs = list(inputs)
    if not inputs:
        return []
    batch = CoreBatch(inputs)
    return batch.outputs(np.array([inp.mem_latency_mult for inp in inputs]))


def effective_smt_mode(arch: Architecture, threads_on_core: int) -> int:
    """Hardware mode a core adopts for a given occupancy.

    Thin wrapper over :meth:`Architecture.effective_smt_mode`, kept here
    because the simulator is where the concept is consumed.
    """
    return arch.effective_smt_mode(threads_on_core)
