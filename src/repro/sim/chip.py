"""Chip- and system-level composition: shared L3, DRAM, NUMA.

Couples the per-core solver to the shared memory system with a damped
fixed-point iteration: core throughputs determine DRAM traffic, traffic
determines the effective memory-latency multiplier, and the multiplier
feeds back into the core solver.  The iteration converges because the
map is monotone (more latency -> less throughput -> less traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.obs import get_tracer
from repro.sim.fast_core import (
    CoreBatch,
    CoreInput,
    CoreOutput,
    effective_smt_mode,
    solve_core,
)
from repro.sim.memory import RHO_CAP, BandwidthModel, numa_extra_latency
from repro.sim.stream import StreamParams
from repro.simos.scheduler import Placement

#: Bisection controls for the bandwidth fixed point.
BISECTION_STEPS = 40
TOLERANCE = 1e-4


@dataclass(frozen=True)
class ChipSolution:
    """Converged steady state for the whole system.

    ``core_outputs[i]`` corresponds to the i-th *occupied* core in
    placement order; all threads of a core share its per-thread values
    (threads are homogeneous within a run).
    """

    core_outputs: Tuple[CoreOutput, ...]
    core_occupancy: Tuple[int, ...]
    mem_latency_mult: float
    traffic_gbps: float
    mem_utilization: float

    @property
    def aggregate_ipc(self) -> float:
        return float(sum(o.core_ipc for o in self.core_outputs))

    def per_thread_ipc(self) -> Tuple[float, ...]:
        values: List[float] = []
        for occ, out in zip(self.core_occupancy, self.core_outputs):
            values.extend(float(v) for v in out.ipc[:occ])
        return tuple(values)

    @property
    def mean_dispatch_held(self) -> float:
        """Thread-weighted dispatch-held fraction across occupied cores."""
        weights = np.array(self.core_occupancy, dtype=float)
        held = np.array([o.dispatch_held_fraction for o in self.core_outputs])
        return float(np.average(held, weights=weights))


def _bandwidth_fixed_point(capacity_gbps, solve_at, traffic_of):
    """Shared bisection over DRAM utilization.

    ``solve_at(mult)`` produces a solution object; ``traffic_of(sol)``
    its offered traffic in GB/s.  Returns ``(solution, mult)`` at the
    self-consistent utilization (see the discussion in
    :func:`solve_chip`).
    """
    bandwidth = BandwidthModel(capacity_gbps)
    tracer = get_tracer()
    tracer.add("chip.fixed_points")

    def offered_utilization(sol) -> float:
        return bandwidth.utilization(traffic_of(sol))

    solution = solve_at(1.0)
    if offered_utilization(solution) <= TOLERANCE:
        return solution, 1.0
    lo, hi = 0.0, RHO_CAP
    hi_mult = bandwidth.latency_multiplier(hi * bandwidth.capacity_gbps)
    hi_sol = solve_at(hi_mult)
    if offered_utilization(hi_sol) >= hi:
        # Demand exceeds capacity even at maximum inflation.
        return hi_sol, hi_mult
    mult = 1.0
    for step in range(BISECTION_STEPS):
        mid = (lo + hi) / 2.0
        mult = bandwidth.latency_multiplier(mid * bandwidth.capacity_gbps)
        solution = solve_at(mult)
        if offered_utilization(solution) > mid:
            lo = mid
        else:
            hi = mid
        if hi - lo < TOLERANCE:
            break
    tracer.add("chip.bisection_steps", step + 1)
    return solution, mult


def solve_chip(placement: Placement, stream: StreamParams) -> ChipSolution:
    """Solve the system fixed point for a homogeneous thread population.

    Every software thread runs ``stream`` (SPMD workloads — the paper's
    benchmarks are data-parallel programs whose threads execute the same
    code); heterogeneity across *cores* still arises from uneven
    occupancy when threads don't fill every context.
    """
    system = placement.system
    arch = system.arch
    occupied = [t for t in placement.threads_per_core if t > 0]
    if not occupied:
        raise ValueError("placement has no occupied cores")
    threads_per_chip = max(placement.threads_per_chip())
    extra_lat = numa_extra_latency(
        system.n_chips, stream.memory.data_sharing, arch.caches.numa_extra_cycles
    )
    bandwidth = BandwidthModel(system.mem_bandwidth_gbps())
    bytes_to_gbps = arch.cycles_per_second() / 1e9

    def solve_at(mult: float) -> Dict[int, CoreOutput]:
        out: Dict[int, CoreOutput] = {}
        for occ in set(occupied):
            mode = effective_smt_mode(arch, occ)
            out[occ] = solve_core(
                CoreInput(
                    arch=arch,
                    smt_level=mode,
                    streams=tuple([stream] * occ),
                    threads_per_chip=max(threads_per_chip, occ),
                    mem_latency_mult=mult,
                    extra_mem_latency=extra_lat,
                )
            )
        return out

    def traffic_of(sol: Dict[int, CoreOutput]) -> float:
        return sum(sol[occ].traffic_bytes_per_cycle * bytes_to_gbps for occ in occupied)

    # The self-consistent utilization solves offered(mult(rho)) == rho.
    # ``offered`` is non-increasing in rho (longer latency -> slower
    # cores -> less traffic) and the identity is increasing, so the
    # crossing is unique: bisect on rho instead of damped iteration,
    # which limit-cycles around the capacity knee.
    solutions, mult = _bandwidth_fixed_point(
        system.mem_bandwidth_gbps(), solve_at, traffic_of
    )

    final_traffic = sum(
        solutions[occ].traffic_bytes_per_cycle * bytes_to_gbps for occ in occupied
    )
    return ChipSolution(
        core_outputs=tuple(solutions[occ] for occ in occupied),
        core_occupancy=tuple(occupied),
        mem_latency_mult=mult,
        traffic_gbps=final_traffic,
        mem_utilization=bandwidth.utilization(bandwidth.achievable_traffic(final_traffic)),
    )


def solve_chip_batch(jobs) -> List[ChipSolution]:
    """Solve many independent chip fixed points in lockstep.

    ``jobs`` is a sequence of ``(placement, stream)`` pairs — the same
    arguments :func:`solve_chip` takes — whose placements must all share
    one :class:`Architecture` instance (systems may differ in chip count
    or bandwidth).  Semantically equivalent to
    ``[solve_chip(p, s) for p, s in jobs]``, but every bisection step
    evaluates *all* jobs' core scenarios with one vectorized
    :class:`CoreBatch` solve instead of per-job scalar loops.

    The lockstep works because each job's bisection trajectory depends
    only on its own offered utilization: jobs that settle at unit
    latency or saturate at the cap drop out of the ``active`` mask, and
    the rest bisect their own ``(lo, hi)`` brackets against a shared
    batch evaluation until every bracket closes.

    Telemetry: the call is wrapped in a ``chip.solve_chip_batch`` span
    (attrs: job and scenario counts, lockstep bisection steps) and
    accumulates ``chip.batch_bisection_steps`` / ``chip.batch_solves``.
    """
    jobs = list(jobs)
    if not jobs:
        return []
    tracer = get_tracer()
    if not tracer.enabled:
        return _solve_chip_batch(jobs)
    with tracer.span("chip.solve_chip_batch", jobs=len(jobs)) as span:
        return _solve_chip_batch(jobs, span)


def _solve_chip_batch(jobs, span=None) -> List[ChipSolution]:
    arch = jobs[0][0].system.arch
    scen_inputs: List[CoreInput] = []
    scen_owner: List[int] = []
    job_occupied: List[List[int]] = []
    job_scen: List[Dict[int, int]] = []
    job_bw: List[BandwidthModel] = []
    for j, (placement, stream) in enumerate(jobs):
        system = placement.system
        if system.arch is not arch:
            raise ValueError(
                "all jobs in solve_chip_batch must share one Architecture instance"
            )
        occupied = [t for t in placement.threads_per_core if t > 0]
        if not occupied:
            raise ValueError("placement has no occupied cores")
        threads_per_chip = max(placement.threads_per_chip())
        extra_lat = numa_extra_latency(
            system.n_chips, stream.memory.data_sharing, arch.caches.numa_extra_cycles
        )
        occ_to_scen: Dict[int, int] = {}
        for occ in set(occupied):
            occ_to_scen[occ] = len(scen_inputs)
            scen_owner.append(j)
            scen_inputs.append(
                CoreInput(
                    arch=arch,
                    smt_level=effective_smt_mode(arch, occ),
                    streams=tuple([stream] * occ),
                    threads_per_chip=max(threads_per_chip, occ),
                    extra_mem_latency=extra_lat,
                )
            )
        job_occupied.append(occupied)
        job_scen.append(occ_to_scen)
        job_bw.append(BandwidthModel(system.mem_bandwidth_gbps()))

    batch = CoreBatch(scen_inputs)
    bytes_to_gbps = arch.cycles_per_second() / 1e9
    owner = np.array(scen_owner)
    n_jobs = len(jobs)

    def job_utils(sol) -> np.ndarray:
        # Mirror the scalar traffic_of: per-core terms summed in
        # placement order, then a single utilization divide.
        traffic = sol.traffic * bytes_to_gbps
        return np.array(
            [
                job_bw[j].utilization(
                    sum(float(traffic[job_scen[j][occ]]) for occ in job_occupied[j])
                )
                for j in range(n_jobs)
            ]
        )

    steps_used = 0
    final_mult = np.ones(n_jobs)
    utils = job_utils(batch.solve(final_mult[owner]))
    undone = utils > TOLERANCE
    if undone.any():
        hi_mult = np.array(
            [bw.latency_multiplier(RHO_CAP * bw.capacity_gbps) for bw in job_bw]
        )
        utils_hi = job_utils(batch.solve(np.where(undone, hi_mult, 1.0)[owner]))
        # Demand exceeds capacity even at maximum inflation: pin there.
        saturated = undone & (utils_hi >= RHO_CAP)
        final_mult = np.where(saturated, hi_mult, final_mult)
        active = undone & ~saturated
        lo = np.zeros(n_jobs)
        hi = np.full(n_jobs, RHO_CAP)
        for _ in range(BISECTION_STEPS):
            if not active.any():
                break
            steps_used += 1
            mid = (lo + hi) / 2.0
            step_mult = np.array(
                [
                    bw.latency_multiplier(m * bw.capacity_gbps)
                    for m, bw in zip(mid, job_bw)
                ]
            )
            step_mult = np.where(active, step_mult, final_mult)
            utils = job_utils(batch.solve(step_mult[owner]))
            above = utils > mid
            lo = np.where(active & above, mid, lo)
            hi = np.where(active & ~above, mid, hi)
            final_mult = np.where(active, step_mult, final_mult)
            active = active & ~((hi - lo) < TOLERANCE)

    final_sol = batch.solve(final_mult[owner])
    outs = batch.materialize(final_sol)
    if span is not None:
        span.set(scenarios=len(scen_inputs), bisection_steps=steps_used)
        tracer = get_tracer()
        tracer.add("chip.batch_bisection_steps", steps_used)
        tracer.add("chip.batch_solves", 2 + steps_used + int(undone.any()))
        tracer.add("chip.batch_jobs", n_jobs)
    results: List[ChipSolution] = []
    for j in range(n_jobs):
        bw = job_bw[j]
        final_traffic = sum(
            float(final_sol.traffic[job_scen[j][occ]]) * bytes_to_gbps
            for occ in job_occupied[j]
        )
        results.append(
            ChipSolution(
                core_outputs=tuple(outs[job_scen[j][occ]] for occ in job_occupied[j]),
                core_occupancy=tuple(job_occupied[j]),
                mem_latency_mult=float(final_mult[j]),
                traffic_gbps=final_traffic,
                mem_utilization=bw.utilization(bw.achievable_traffic(final_traffic)),
            )
        )
    return results


@dataclass(frozen=True)
class SystemSolution:
    """Steady state for a heterogeneous (per-thread stream) population.

    Unlike :class:`ChipSolution`, values are indexed back to *thread*
    order so co-scheduling experiments can attribute throughput to the
    job each thread belongs to.
    """

    core_outputs: Tuple[CoreOutput, ...]    # one per occupied core
    core_indices: Tuple[int, ...]           # placement core index per output
    thread_core: Tuple[int, ...]            # thread -> position in core_outputs
    thread_slot: Tuple[int, ...]            # thread -> slot within its core
    mem_latency_mult: float
    traffic_gbps: float
    mem_utilization: float

    def thread_ipc(self, thread: int) -> float:
        out = self.core_outputs[self.thread_core[thread]]
        return float(out.ipc[self.thread_slot[thread]])

    def per_thread_ipc(self) -> Tuple[float, ...]:
        return tuple(self.thread_ipc(t) for t in range(len(self.thread_core)))

    @property
    def aggregate_ipc(self) -> float:
        return float(sum(o.core_ipc for o in self.core_outputs))


def solve_system(placement: Placement, thread_streams) -> SystemSolution:
    """Solve the fixed point with a distinct stream per software thread.

    ``thread_streams[i]`` is the :class:`StreamParams` of thread ``i``;
    threads map to cores via the placement's breadth-first assignment.
    This is the substrate for SMT co-scheduling experiments (related
    work, paper SVI): which single-threaded jobs should share a core?
    """
    system = placement.system
    arch = system.arch
    streams = tuple(thread_streams)
    if len(streams) != placement.n_threads:
        raise ValueError(
            f"need one stream per thread: {len(streams)} streams for "
            f"{placement.n_threads} threads"
        )
    if not placement.assignment:
        raise ValueError("placement lacks a thread assignment")

    occupied_cores = [c for c, n in enumerate(placement.threads_per_core) if n > 0]
    core_pos = {core: i for i, core in enumerate(occupied_cores)}
    core_threads = {core: placement.threads_on_core(core) for core in occupied_cores}
    threads_per_chip = max(placement.threads_per_chip())
    bytes_to_gbps = arch.cycles_per_second() / 1e9

    # NUMA latency from the population's mean sharing degree.
    mean_sharing = float(np.mean([s.memory.data_sharing for s in streams]))
    extra_lat = numa_extra_latency(
        system.n_chips, mean_sharing, arch.caches.numa_extra_cycles
    )

    def solve_at(mult: float) -> Dict[int, CoreOutput]:
        out: Dict[int, CoreOutput] = {}
        for core in occupied_cores:
            members = core_threads[core]
            mode = effective_smt_mode(arch, len(members))
            out[core] = solve_core(
                CoreInput(
                    arch=arch,
                    smt_level=mode,
                    streams=tuple(streams[t] for t in members),
                    threads_per_chip=max(threads_per_chip, len(members)),
                    mem_latency_mult=mult,
                    extra_mem_latency=extra_lat,
                )
            )
        return out

    def traffic_of(sol: Dict[int, CoreOutput]) -> float:
        return sum(sol[c].traffic_bytes_per_cycle * bytes_to_gbps for c in occupied_cores)

    solutions, mult = _bandwidth_fixed_point(
        system.mem_bandwidth_gbps(), solve_at, traffic_of
    )

    thread_core = [0] * placement.n_threads
    thread_slot = [0] * placement.n_threads
    for core in occupied_cores:
        for slot, t in enumerate(core_threads[core]):
            thread_core[t] = core_pos[core]
            thread_slot[t] = slot

    final_traffic = traffic_of(solutions)
    bandwidth = BandwidthModel(system.mem_bandwidth_gbps())
    return SystemSolution(
        core_outputs=tuple(solutions[c] for c in occupied_cores),
        core_indices=tuple(occupied_cores),
        thread_core=tuple(thread_core),
        thread_slot=tuple(thread_slot),
        mem_latency_mult=mult,
        traffic_gbps=final_traffic,
        mem_utilization=bandwidth.utilization(
            bandwidth.achievable_traffic(final_traffic)
        ),
    )
