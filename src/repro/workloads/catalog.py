"""The assembled Table I catalog and the per-figure benchmark sets."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.workloads.commercial import commercial_workloads
from repro.workloads.nas import nas_workloads
from repro.workloads.parsec import parsec_workloads
from repro.workloads.spec import WorkloadSpec
from repro.workloads.specomp import specomp_workloads


#: Lazily built spec index shared by every ``all_workloads()`` call.
#: Safe to share: specs are frozen; callers get a fresh outer dict.
_CATALOG: Dict[str, WorkloadSpec] = {}


def all_workloads() -> Dict[str, WorkloadSpec]:
    """Every modelled benchmark, by name (a fresh dict of shared specs)."""
    if not _CATALOG:
        for source in (nas_workloads, parsec_workloads, specomp_workloads,
                       commercial_workloads):
            for name, spec in source().items():
                if name in _CATALOG:
                    _CATALOG.clear()
                    raise RuntimeError(f"duplicate workload name {name!r}")
                _CATALOG[name] = spec
    return dict(_CATALOG)


def get_workload(name: str) -> WorkloadSpec:
    try:
        return all_workloads()[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(all_workloads())}"
        ) from None


#: The 28 benchmarks of the AIX/POWER7 experiments (Figs. 6-9, 13-15).
POWER7_SET: Tuple[str, ...] = (
    # SPEC OMP2001
    "Ammp", "Applu", "Apsi", "Equake", "Fma3d", "Gafort", "Mgrid", "Swim",
    "Wupwise",
    # PARSEC (the AIX-buildable subset)
    "Blackscholes", "Dedup", "Fluidanimate", "Streamcluster",
    # NAS OpenMP + MPI
    "BT", "EP", "IS", "MG",
    "CG_MPI", "EP_MPI", "FT_MPI", "IS_MPI", "LU_MPI", "MG_MPI",
    # Synthetic / graph / commercial
    "SSCA2", "Stream", "SPECjbb", "SPECjbb_contention", "Daytrader",
)

#: The Linux/Core i7 SMT2-measurement set (Fig. 10): 21 benchmarks.
NEHALEM_SET: Tuple[str, ...] = (
    "blackscholes_pthreads", "bodytrack", "bodytrack_pthreads", "BT",
    "CG", "Dedup", "EP", "facesim", "ferret", "Fluidanimate",
    "freqmine", "FT", "LU", "raytrace", "SP", "Streamcluster", "swaptions",
    "UA", "vips", "SSCA2", "x264",
)

#: The Linux/Core i7 SMT1-measurement set (Fig. 12): adds canneal,
#: drops the entries absent from that figure.
NEHALEM_SMT1_SET: Tuple[str, ...] = (
    "bodytrack", "bodytrack_pthreads", "BT", "canneal", "CG", "Dedup",
    "EP", "facesim", "Fluidanimate", "freqmine", "FT", "LU", "raytrace",
    "SP", "Streamcluster", "swaptions", "UA",
)


#: The ARM SMT2 transfer-study set: a cross-suite slice mixing the
#: compute-bound, memory-bound, and synchronization-heavy extremes so
#: threshold selection on a 2-level chip sees both SMT-friendly and
#: SMT-averse behaviour.
ARMSMT_SET: Tuple[str, ...] = (
    "Ammp", "Applu", "Blackscholes", "BT", "CG_MPI", "Dedup", "EP",
    "Equake", "Fluidanimate", "FT_MPI", "IS", "LU_MPI", "MG", "Mgrid",
    "SPECjbb", "SPECjbb_contention", "SSCA2", "Stream", "Streamcluster",
    "Swim",
)


def power7_catalog() -> Dict[str, WorkloadSpec]:
    specs = all_workloads()
    return {name: specs[name] for name in POWER7_SET}


def armsmt_catalog() -> Dict[str, WorkloadSpec]:
    specs = all_workloads()
    return {name: specs[name] for name in ARMSMT_SET}


def nehalem_catalog() -> Dict[str, WorkloadSpec]:
    specs = all_workloads()
    return {name: specs[name] for name in NEHALEM_SET}


def table1_rows() -> List[Tuple[str, str, str, str]]:
    """(label, suite, problem size, description) rows of Table I."""
    specs = all_workloads()
    rows = []
    for name in sorted(specs):
        s = specs[name]
        rows.append((s.name, s.suite, s.problem_size, s.description))
    return rows


#: Static alias used by the Table I bench.
TABLE1_ROWS = table1_rows
