"""PARSEC 2.1 benchmarks (Table I).

Emerging multithreaded applications.  Only a handful built on AIX
(paper §III-B): Blackscholes, Dedup, Fluidanimate, Streamcluster appear
in the POWER7 experiments; the full set appears on Linux/Nehalem.

Calibration anchors: Fig. 7's speedup ladder (blackscholes 1.82,
fluidanimate 1.35, dedup 0.86) and §IV-A's Streamcluster analysis
(~40% loads, few stores, 8 L3 MPKI on Nehalem at SMT2, big L3 relief
on POWER7).
"""

from __future__ import annotations

from typing import Dict

from repro.simos.sync import SyncProfile
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import make_stream


def _parsec(name, desc, stream, sync=None, tags=()):
    return WorkloadSpec(
        name=name, suite="PARSEC", problem_size="Native",
        description=desc, stream=stream,
        sync=sync or SyncProfile(serial_fraction=0.01),
        tags=("parsec",) + tuple(tags),
    )


def parsec_workloads() -> Dict[str, WorkloadSpec]:
    specs = {}

    # Blackscholes: option pricing — small working set, FP-rich but
    # diverse (loop control + table loads), embarrassingly parallel.
    specs["Blackscholes"] = _parsec(
        "Blackscholes", "Computes option prices",
        make_stream(loads=0.20, stores=0.08, branches=0.10, fx=0.17, vs=0.45,
                    ilp=1.6, l1_mpki=3, l2_mpki=1, l3_mpki=0.3,
                    locality_alpha=0.4, data_sharing=0.1, mlp=2.5,
                    branch_mispredict_rate=0.008),
        tags=("fp", "scalable"),
    )
    # pthreads build used on Nehalem (Fig. 10) — same kernel, slightly
    # different threading harness.
    specs["blackscholes_pthreads"] = _parsec(
        "blackscholes_pthreads", "Option pricing, pthreads build",
        make_stream(loads=0.20, stores=0.08, branches=0.11, fx=0.18, vs=0.43,
                    ilp=1.6, l1_mpki=3, l2_mpki=1, l3_mpki=0.3,
                    locality_alpha=0.4, data_sharing=0.1, mlp=2.5,
                    branch_mispredict_rate=0.008),
        tags=("fp", "scalable"),
    )

    # Bodytrack: computer vision — mixed FP/int, phase barriers.
    body_stream = make_stream(
        loads=0.24, stores=0.09, branches=0.12, fx=0.25, vs=0.30,
        ilp=1.4, l1_mpki=7, l2_mpki=2.5, l3_mpki=0.6,
        locality_alpha=0.45, data_sharing=0.4, mlp=2.5,
        branch_mispredict_rate=0.014,
    )
    body_sync = SyncProfile(serial_fraction=0.04, block_coeff=0.45, block_half=4,
                            work_inflation_coeff=2.8, work_inflation_half=6)
    specs["bodytrack"] = _parsec(
        "bodytrack", "Simulates motion tracking of a person",
        body_stream, body_sync, tags=("vision",),
    )
    specs["bodytrack_pthreads"] = _parsec(
        "bodytrack_pthreads", "Motion tracking, pthreads build",
        body_stream, body_sync, tags=("vision",),
    )

    # Canneal: cache-aware simulated annealing — pointer chasing over a
    # huge netlist, latency bound (Fig. 12 set).
    specs["canneal"] = _parsec(
        "canneal", "Cache-aware simulated annealing",
        make_stream(loads=0.33, stores=0.10, branches=0.10, fx=0.34, vs=0.13,
                    ilp=1.0, l1_mpki=30, l2_mpki=18, l3_mpki=6.0,
                    locality_alpha=0.25, data_sharing=0.5, mlp=1.8,
                    branch_mispredict_rate=0.012),
        SyncProfile(serial_fraction=0.02),
        tags=("memory-latency",),
    )

    # Dedup: pipeline-parallel compression+deduplication, heavy I/O
    # (Table I) — queue management overhead and device waits.
    specs["Dedup"] = _parsec(
        "Dedup", "Data compression and deduplication. Heavy I/O",
        make_stream(loads=0.26, stores=0.14, branches=0.15, fx=0.40, vs=0.05,
                    ilp=1.5, l1_mpki=10, l2_mpki=3, l3_mpki=0.6,
                    locality_alpha=1.4, data_sharing=0.3, mlp=2.5,
                    branch_mispredict_rate=0.035),
        SyncProfile(io_wait=0.30, serial_fraction=0.04,
                    block_coeff=0.38, block_half=8,
                    work_inflation_coeff=1.90, work_inflation_half=10),
        tags=("io", "pipeline"),
    )

    # Facesim: physics simulation of a human face.
    specs["facesim"] = _parsec(
        "facesim", "Simulates human facial motion",
        make_stream(loads=0.26, stores=0.11, branches=0.06, fx=0.12, vs=0.45,
                    ilp=1.8, l1_mpki=12, l2_mpki=5, l3_mpki=1.6,
                    locality_alpha=0.6, data_sharing=0.3, mlp=3.0,
                    branch_mispredict_rate=0.006),
        SyncProfile(serial_fraction=0.03, block_coeff=0.12, block_half=8),
        tags=("fp",),
    )

    # Ferret: content-similarity search pipeline.
    specs["ferret"] = _parsec(
        "ferret", "Content similarity search",
        make_stream(loads=0.26, stores=0.09, branches=0.12, fx=0.28, vs=0.25,
                    ilp=1.3, l1_mpki=10, l2_mpki=4, l3_mpki=1.2,
                    locality_alpha=0.4, data_sharing=0.3, mlp=2.2,
                    branch_mispredict_rate=0.013),
        SyncProfile(serial_fraction=0.01, block_coeff=0.10, block_half=10),
        tags=("pipeline",),
    )

    # Fluidanimate: SPH fluid dynamics — fine-grained locks on cells,
    # FP compute; Fig. 7 anchor at 1.35.
    specs["Fluidanimate"] = _parsec(
        "Fluidanimate", "Fluid dynamics simulation",
        make_stream(loads=0.24, stores=0.10, branches=0.09, fx=0.17, vs=0.40,
                    ilp=1.5, l1_mpki=8, l2_mpki=3, l3_mpki=0.9,
                    locality_alpha=0.55, data_sharing=0.3, mlp=2.5,
                    branch_mispredict_rate=0.009),
        SyncProfile(serial_fraction=0.015, spin_coeff=0.10, spin_half=24,
                    block_coeff=0.18, block_half=10,
                    work_inflation_coeff=0.10, work_inflation_half=16),
        tags=("fp", "locks"),
    )

    # Freqmine: frequent itemset mining — integer tree walks.
    specs["freqmine"] = _parsec(
        "freqmine", "Frequent item set mining",
        make_stream(loads=0.30, stores=0.10, branches=0.14, fx=0.40, vs=0.06,
                    ilp=1.2, l1_mpki=14, l2_mpki=6, l3_mpki=1.5,
                    locality_alpha=0.4, data_sharing=0.5, mlp=2.0,
                    branch_mispredict_rate=0.015),
        SyncProfile(serial_fraction=0.03, block_coeff=0.10, block_half=8),
        tags=("mining",),
    )

    # Raytrace: real-time raytracing — BVH walks, mixed mix.
    specs["raytrace"] = _parsec(
        "raytrace", "Raytracing",
        make_stream(loads=0.27, stores=0.07, branches=0.13, fx=0.23, vs=0.30,
                    ilp=1.3, l1_mpki=9, l2_mpki=3.5, l3_mpki=0.9,
                    locality_alpha=0.4, data_sharing=0.5, mlp=2.2,
                    branch_mispredict_rate=0.014),
        SyncProfile(serial_fraction=0.02),
        tags=("vision",),
    )

    # Streamcluster: online clustering — the paper's outlier.  ~40%
    # loads and almost no stores (§IV-A); repeated distance sweeps over
    # a point set that thrashes a small L3 (Nehalem: 8 L3 MPKI) but is
    # largely absorbed by POWER7's 4 MB/core eDRAM L3.
    specs["Streamcluster"] = _parsec(
        "Streamcluster", "Online data clustering",
        make_stream(loads=0.40, stores=0.04, branches=0.07, fx=0.14, vs=0.35,
                    ilp=1.6, l1_mpki=28, l2_mpki=16, l3_mpki=2.0,
                    locality_alpha=1.4, data_sharing=0.45, mlp=3.5,
                    branch_mispredict_rate=0.005),
        SyncProfile(serial_fraction=0.02, block_coeff=0.30, block_half=12,
                    work_inflation_coeff=0.30, work_inflation_half=12),
        tags=("memory", "outlier"),
    )

    # Swaptions: Monte-Carlo pricing — small footprint, scalable FP.
    specs["swaptions"] = _parsec(
        "swaptions", "Pricing of financial swaptions",
        make_stream(loads=0.21, stores=0.08, branches=0.10, fx=0.18, vs=0.43,
                    ilp=1.5, l1_mpki=2.5, l2_mpki=0.8, l3_mpki=0.2,
                    locality_alpha=0.4, data_sharing=0.1, mlp=2.5,
                    branch_mispredict_rate=0.007),
        tags=("fp", "scalable"),
    )

    # Vips: image processing pipeline.
    specs["vips"] = _parsec(
        "vips", "Image processing",
        make_stream(loads=0.25, stores=0.12, branches=0.11, fx=0.28, vs=0.24,
                    ilp=1.5, l1_mpki=8, l2_mpki=3, l3_mpki=0.9,
                    locality_alpha=0.45, data_sharing=0.2, mlp=2.5,
                    branch_mispredict_rate=0.011),
        SyncProfile(serial_fraction=0.015, block_coeff=0.08, block_half=10),
        tags=("pipeline",),
    )

    # x264: video encoding — integer/SIMD mix with motion-estimation
    # branches and frame-dependency pipelining.
    specs["x264"] = _parsec(
        "x264", "Video encoding",
        make_stream(loads=0.26, stores=0.11, branches=0.12, fx=0.27, vs=0.24,
                    ilp=1.6, l1_mpki=7, l2_mpki=2.5, l3_mpki=0.7,
                    locality_alpha=0.45, data_sharing=0.3, mlp=2.5,
                    branch_mispredict_rate=0.015),
        SyncProfile(serial_fraction=0.03, block_coeff=0.40, block_half=5,
                    work_inflation_coeff=1.5, work_inflation_half=6),
        tags=("media",),
    )
    return specs
