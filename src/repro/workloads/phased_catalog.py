"""Phased versions of catalog applications.

§I motivates *online* measurement with applications that "go through
different phases".  These composites build multi-phase behaviour out of
calibrated catalog ingredients, staying true to the real codes'
structure:

* **FT** alternates compute-heavy butterfly passes with communication-
  bound transposes;
* **dedup** pipelines chunking (I/O), hashing (compute) and compression
  stages whose balance shifts over the input;
* **SPECjbb-rampup** models a JVM warming up: interpreter-dominated
  start (branchy, slow) settling into compiled steady state;
* **graph-analytics** interleaves an embarrassingly-parallel scoring
  pass with a lock-heavy update pass (SSCA2's kernel structure).
"""

from __future__ import annotations

from typing import Dict

from repro.workloads.catalog import get_workload
from repro.workloads.phases import Phase, PhasedWorkload
from repro.workloads.variants import scaled_input

#: Work units per canonical phase (useful instructions).
PHASE_WORK = 1.5e10


def ft_compute_transpose() -> PhasedWorkload:
    """FFT passes (SMT-friendly) alternating with transposes (bandwidth)."""
    compute = get_workload("FT")
    transpose = scaled_input(get_workload("MG"), 1.0, label="FT-transpose")
    return PhasedWorkload(
        "FT-compute-transpose",
        (
            Phase(compute, PHASE_WORK),
            Phase(transpose, PHASE_WORK / 2),
            Phase(compute, PHASE_WORK),
            Phase(transpose, PHASE_WORK / 2),
        ),
    )


def dedup_pipeline() -> PhasedWorkload:
    """Chunk (I/O bound) -> hash/compress (compute) -> write (I/O)."""
    io_stage = get_workload("Dedup")
    compute_stage = scaled_input(get_workload("freqmine"), 1.0, label="dedup-hash")
    return PhasedWorkload(
        "dedup-pipeline",
        (
            Phase(io_stage, PHASE_WORK / 2),
            Phase(compute_stage, PHASE_WORK),
            Phase(io_stage, PHASE_WORK / 2),
        ),
    )


def jbb_rampup() -> PhasedWorkload:
    """JVM warm-up: contended startup settling into steady state."""
    warmup = get_workload("SPECjbb_contention")
    steady = get_workload("SPECjbb")
    return PhasedWorkload(
        "specjbb-rampup",
        (
            Phase(warmup, PHASE_WORK / 2),
            Phase(steady, 2 * PHASE_WORK),
        ),
    )


def graph_analytics() -> PhasedWorkload:
    """Parallel scoring pass alternating with lock-heavy graph updates."""
    score = get_workload("EP")
    update = get_workload("SSCA2")
    return PhasedWorkload(
        "graph-analytics",
        (
            Phase(score, PHASE_WORK),
            Phase(update, PHASE_WORK),
            Phase(score, PHASE_WORK),
            Phase(update, PHASE_WORK),
        ),
    )


def phased_catalog() -> Dict[str, PhasedWorkload]:
    """All phased composites by name."""
    items = (ft_compute_transpose(), dedup_pipeline(), jbb_rampup(),
             graph_analytics())
    return {w.name: w for w in items}
