"""The workload specification record."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.sim.stream import StreamParams
from repro.simos.sync import SyncProfile


@dataclass(frozen=True)
class WorkloadSpec:
    """A benchmark as the simulator consumes it.

    ``stream`` describes one thread's instruction stream; ``sync`` its
    software scalability; the remaining fields are Table I metadata.
    """

    name: str
    suite: str
    problem_size: str
    description: str
    stream: StreamParams
    sync: SyncProfile
    tags: Tuple[str, ...] = ()

    def __post_init__(self):
        if not self.name:
            raise ValueError("workload name must be non-empty")

    def has_tag(self, tag: str) -> bool:
        return tag in self.tags

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkloadSpec({self.name!r}, suite={self.suite!r})"
