"""Multi-phase workloads.

The paper motivates *online* SMT selection with applications that "go
through different phases" (§I): the metric is measured periodically and
the SMT level adapts.  A :class:`PhasedWorkload` strings together
workload specs with durations; the online optimizer experiment and the
perf-stat sampler consume it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence, Tuple

from repro.util.validation import check_positive
from repro.workloads.spec import WorkloadSpec


@dataclass(frozen=True)
class Phase:
    """One phase: a behaviour plus how long it lasts (useful work units)."""

    spec: WorkloadSpec
    work: float  # useful instructions in this phase

    def __post_init__(self):
        check_positive("work", self.work)


@dataclass(frozen=True)
class PhasedWorkload:
    """An application whose behaviour changes over its run."""

    name: str
    phases: Tuple[Phase, ...]

    def __post_init__(self):
        if not self.phases:
            raise ValueError("a phased workload needs at least one phase")

    @property
    def total_work(self) -> float:
        return sum(p.work for p in self.phases)

    def __iter__(self) -> Iterator[Phase]:
        return iter(self.phases)

    def phase_at(self, work_done: float) -> Phase:
        """The phase active after ``work_done`` useful instructions."""
        if work_done < 0:
            raise ValueError(f"work_done must be >= 0, got {work_done}")
        acc = 0.0
        for phase in self.phases:
            acc += phase.work
            if work_done < acc:
                return phase
        return self.phases[-1]


def alternating(name: str, a: WorkloadSpec, b: WorkloadSpec, *,
                work_per_phase: float, repeats: int) -> PhasedWorkload:
    """Convenience: A-B-A-B... phase structure for optimizer experiments."""
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    phases = []
    for _ in range(repeats):
        phases.append(Phase(a, work_per_phase))
        phases.append(Phase(b, work_per_phase))
    return PhasedWorkload(name=name, phases=tuple(phases))
