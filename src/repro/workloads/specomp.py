"""SPEC OMP2001 benchmarks (Table I: Ammp..Wupwise).

Adapted from SPEC CPU2000 FP codes: long vectorizable loops, VS-heavy
mixes, large array working sets.  The suite is where most of the
paper's SMT4-hostile points come from — homogeneous FP mixes that keep
the VSU busy with one context (paper §I contention cause 1) combined
with strong cache pressure and DRAM bandwidth appetite (cause 2).
Wupwise/Fma3d/Gafort are the suite's SMT-friendlier members (more mixed
instruction streams, smaller hot sets).
"""

from __future__ import annotations

from typing import Dict

from repro.simos.sync import SyncProfile
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import make_stream


def _omp(name, desc, stream, sync=None, tags=()):
    return WorkloadSpec(
        name=name, suite="SPEC OMP2001", problem_size="Reference",
        description=desc, stream=stream,
        sync=sync or SyncProfile(serial_fraction=0.015, block_coeff=0.25,
                                 block_half=20, work_inflation_coeff=0.12,
                                 work_inflation_half=20),
        tags=("specomp", "openmp") + tuple(tags),
    )


def specomp_workloads() -> Dict[str, WorkloadSpec]:
    specs = {}

    # Ammp: molecular dynamics — neighbour lists, FP heavy, moderate misses.
    specs["Ammp"] = _omp(
        "Ammp", "Molecular dynamics",
        make_stream(loads=0.27, stores=0.09, branches=0.07, fx=0.09, vs=0.48,
                    ilp=1.6, l1_mpki=16, l2_mpki=7, l3_mpki=3.0,
                    locality_alpha=1.05, data_sharing=0.2, mlp=3.0,
                    branch_mispredict_rate=0.009),
        tags=("fp",),
    )

    # Applu: parabolic/elliptic PDEs — strided sweeps, bandwidth hungry.
    specs["Applu"] = _omp(
        "Applu", "Fluid dynamics (parabolic/elliptic PDEs)",
        make_stream(loads=0.28, stores=0.12, branches=0.03, fx=0.06, vs=0.51,
                    ilp=2.1, l1_mpki=19, l2_mpki=9, l3_mpki=4.0,
                    locality_alpha=0.75, data_sharing=0.15, mlp=4.0,
                    branch_mispredict_rate=0.003),
        tags=("fp", "bandwidth"),
    )

    # Apsi: lake weather model.
    specs["Apsi"] = _omp(
        "Apsi", "Lake weather modeling",
        make_stream(loads=0.26, stores=0.11, branches=0.05, fx=0.10, vs=0.48,
                    ilp=1.8, l1_mpki=14, l2_mpki=6, l3_mpki=2.6,
                    locality_alpha=1.0, data_sharing=0.2, mlp=3.0,
                    branch_mispredict_rate=0.005),
        tags=("fp",),
    )

    # Equake: earthquake simulation — sparse solver, the paper's Fig. 1
    # SMT4 loser (~0.5x): severe cache thrash under sharing.
    specs["Equake"] = _omp(
        "Equake", "Earthquake simulation",
        make_stream(loads=0.31, stores=0.09, branches=0.05, fx=0.07, vs=0.48,
                    ilp=1.7, l1_mpki=28, l2_mpki=14, l3_mpki=6.5,
                    locality_alpha=1.2, data_sharing=0.1, mlp=3.0,
                    branch_mispredict_rate=0.005),
        SyncProfile(serial_fraction=0.02, block_coeff=0.10, block_half=10),
        tags=("fp", "memory"),
    )

    # Fma3d: finite-element crash simulation — more control flow and
    # integer work than the rest of the suite; mild SMT benefit.
    specs["Fma3d"] = _omp(
        "Fma3d", "Finite element method PDE solver",
        make_stream(loads=0.23, stores=0.10, branches=0.11, fx=0.21, vs=0.35,
                    ilp=1.4, l1_mpki=8, l2_mpki=3, l3_mpki=0.8,
                    locality_alpha=0.5, data_sharing=0.25, mlp=2.5,
                    branch_mispredict_rate=0.012),
        tags=("fp",),
    )

    # Gafort: genetic algorithm — mixed integer/FP, random shuffles.
    specs["Gafort"] = _omp(
        "Gafort", "Genetic algorithm",
        make_stream(loads=0.24, stores=0.12, branches=0.12, fx=0.22, vs=0.30,
                    ilp=1.4, l1_mpki=12, l2_mpki=4.5, l3_mpki=0.9,
                    locality_alpha=1.0, data_sharing=0.3, mlp=2.5,
                    branch_mispredict_rate=0.015),
        SyncProfile(serial_fraction=0.02, block_coeff=0.25, block_half=12,
                    work_inflation_coeff=2.0, work_inflation_half=24),
        tags=("mixed",),
    )

    # Mgrid: multigrid stencil — long vector loops, bandwidth bound.
    specs["Mgrid"] = _omp(
        "Mgrid", "Multigrid method differential equation solver",
        make_stream(loads=0.30, stores=0.11, branches=0.02, fx=0.04, vs=0.53,
                    ilp=2.2, l1_mpki=20, l2_mpki=11, l3_mpki=5.5,
                    locality_alpha=0.8, data_sharing=0.15, mlp=5.0,
                    branch_mispredict_rate=0.002),
        tags=("fp", "bandwidth"),
    )

    # Swim: shallow-water stencils — the classic bandwidth burner.
    specs["Swim"] = _omp(
        "Swim", "Shallow water modeling",
        make_stream(loads=0.29, stores=0.13, branches=0.02, fx=0.04, vs=0.52,
                    ilp=2.3, l1_mpki=26, l2_mpki=15, l3_mpki=8.0,
                    locality_alpha=0.85, data_sharing=0.1, mlp=5.0,
                    branch_mispredict_rate=0.002),
        tags=("fp", "bandwidth"),
    )

    # Wupwise: quantum chromodynamics — dense BLAS-like kernels with
    # good reuse; the suite's SMT-friendliest member.
    specs["Wupwise"] = _omp(
        "Wupwise", "Quantum chromodynamics",
        make_stream(loads=0.22, stores=0.10, branches=0.08, fx=0.16, vs=0.44,
                    ilp=1.7, l1_mpki=5, l2_mpki=1.5, l3_mpki=0.4,
                    locality_alpha=0.4, data_sharing=0.3, mlp=3.0,
                    branch_mispredict_rate=0.006),
        tags=("fp",),
    )
    return specs
