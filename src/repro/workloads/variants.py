"""Input-dependent workload variants.

§I's case against offline SMT tuning: a configuration chosen on the
test input "is not effective ... if the application behavior
significantly changes depending on the input".  The dominant
input-size effect for these benchmarks is the working set: a smaller
problem fits in cache (misses collapse, SMT gains head-room), a larger
one thrashes and saturates bandwidth.  Lock contention per unit of
work is mostly input-independent (same code), so sync profiles carry
over unchanged.
"""

from __future__ import annotations

from dataclasses import replace

from repro.util.validation import check_positive
from repro.workloads.spec import WorkloadSpec

#: How strongly the miss rates respond to problem scale.  Miss curves
#: of array codes are roughly power-law in working-set size; 0.6 is a
#: middle-of-the-road exponent (pure streaming would be ~0, a hard
#: cache cliff ~1+).
MISS_SCALE_EXPONENT = 0.6


def scaled_input(spec: WorkloadSpec, scale: float, *,
                 label: str = None) -> WorkloadSpec:
    """The same application on a ``scale``-times-larger problem.

    ``scale < 1`` shrinks the working set (misses drop), ``scale > 1``
    grows it (misses rise, capped by the stream validation).  The
    instruction mix and ILP are input-invariant — same code.
    """
    check_positive("scale", scale)
    factor = scale ** MISS_SCALE_EXPONENT
    stream = spec.stream.scaled_misses(factor)
    return replace(
        spec,
        name=label or f"{spec.name}@x{scale:g}",
        problem_size=f"{spec.problem_size} (scaled x{scale:g})",
        stream=stream,
    )
