"""Commercial and synthetic server benchmarks (Table I).

SPECjbb2005, the paper's custom SPECjbb05-contention variant (all
worker threads on a single warehouse — heavy lock contention),
DayTrader (WebSphere trading app, web front-end, heavy network I/O),
STREAM (memory bandwidth) and SSCA2 (graph analysis, lock heavy).
"""

from __future__ import annotations

from typing import Dict

from repro.simos.sync import SyncProfile
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import make_stream


def commercial_workloads() -> Dict[str, WorkloadSpec]:
    specs = {}

    # SPECjbb2005: server-side Java — branchy integer/pointer code,
    # per-warehouse data (little contention), moderate GC pauses.
    specs["SPECjbb"] = WorkloadSpec(
        name="SPECjbb", suite="SPECjbb2005",
        problem_size="No. warehouses = No. hw threads",
        description="Server-side Java performance; 3-tier system in a JVM",
        stream=make_stream(loads=0.27, stores=0.12, branches=0.17, fx=0.38, vs=0.06,
                           ilp=1.3, l1_mpki=16, l2_mpki=6, l3_mpki=0.8,
                           locality_alpha=0.8, data_sharing=0.2, mlp=2.2,
                           branch_mispredict_rate=0.025),
        sync=SyncProfile(serial_fraction=0.01, block_coeff=0.10, block_half=16,
                         work_inflation_coeff=0.08),
        tags=("java", "commercial"),
    )

    # SPECjbb05-contention: all workers on ONE warehouse.  The paper's
    # most SMT4-hostile point (Fig. 7: 0.25): a single contended lock
    # whose holder slows down at SMT4, plus lock-line ping-pong.
    specs["SPECjbb_contention"] = WorkloadSpec(
        name="SPECjbb_contention", suite="custom",
        problem_size="No. warehouses = 1",
        description="Modified SPECjbb with a single warehouse. Heavy lock contention",
        stream=make_stream(loads=0.28, stores=0.12, branches=0.18, fx=0.37, vs=0.05,
                           ilp=1.3, l1_mpki=12, l2_mpki=4, l3_mpki=0.8,
                           locality_alpha=1.3, data_sharing=0.3, mlp=2.2,
                           branch_mispredict_rate=0.02),
        sync=SyncProfile(lock_serial_fraction=0.55, lock_pingpong_coeff=1.6,
                         lock_pingpong_half=10, block_coeff=0.25, block_half=8),
        tags=("java", "locks"),
    )

    # DayTrader: WebSphere web front-end under 500 simulated clients —
    # lots of network waits, branchy Java, scalable request parallelism.
    specs["Daytrader"] = WorkloadSpec(
        name="Daytrader", suite="WebSphere",
        problem_size="500 clients",
        description="WebSphere trading platform simulation. Web front-end only. "
                    "Heavy network I/O",
        stream=make_stream(loads=0.26, stores=0.12, branches=0.18, fx=0.36, vs=0.08,
                           ilp=1.2, l1_mpki=18, l2_mpki=7, l3_mpki=0.7,
                           locality_alpha=0.5, data_sharing=0.25, mlp=2.5,
                           branch_mispredict_rate=0.025),
        sync=SyncProfile(io_wait=0.25, block_coeff=0.12, block_half=16,
                         work_inflation_coeff=0.06),
        tags=("java", "io", "commercial"),
    )

    # STREAM: pure bandwidth — compulsory misses, hardware prefetchers
    # give high MLP, DRAM saturated already at SMT1 on 8 cores.
    specs["Stream"] = WorkloadSpec(
        name="Stream", suite="synthetic",
        problem_size="4578 MB x 1000 iterations",
        description="Streaming memory bandwidth benchmark",
        stream=make_stream(loads=0.33, stores=0.19, branches=0.04, fx=0.12, vs=0.32,
                           ilp=2.8, l1_mpki=48, l2_mpki=46, l3_mpki=44,
                           locality_alpha=0.12, data_sharing=0.0, mlp=10.0,
                           branch_mispredict_rate=0.002),
        sync=SyncProfile(block_coeff=0.10, block_half=8),
        tags=("bandwidth", "synthetic"),
    )

    # SSCA2: graph analysis with atomic/lock-protected updates to a
    # shared multigraph — "integer operations, large memory footprint,
    # irregular access" + "lock heavy" (Table I).
    specs["SSCA2"] = WorkloadSpec(
        name="SSCA2", suite="SSCA",
        problem_size="SCALE=17, 2^17 vertices",
        description="Graph analysis benchmark. Lock heavy",
        stream=make_stream(loads=0.30, stores=0.10, branches=0.16, fx=0.40, vs=0.04,
                           ilp=1.2, l1_mpki=16, l2_mpki=6, l3_mpki=1.3,
                           locality_alpha=1.2, data_sharing=0.5, mlp=2.0,
                           branch_mispredict_rate=0.025),
        sync=SyncProfile(lock_serial_fraction=0.06, lock_pingpong_coeff=0.30,
                         lock_pingpong_half=12, block_coeff=0.06),
        tags=("graph", "locks"),
    )
    return specs
