"""NAS Parallel Benchmarks (Table I: IS, BT, LU, CG, FT, MG, EP).

OpenMP variants model shared-heap threads (high data sharing, some
barrier/serial overhead); ``*_MPI`` variants model one process per
context (disjoint address spaces — ``data_sharing = 0`` — and a little
messaging overhead as work inflation).

Stream parameters follow the kernels' published characters: EP is pure
scalable compute with a tiny footprint; IS is an integer bucket sort
with random access and key exchanges; CG is sparse-matrix
latency-bound indirection; MG and FT stream large arrays; BT/LU are
dense FP solvers with blocked reuse.
"""

from __future__ import annotations

from typing import Dict

from repro.simos.sync import SyncProfile
from repro.workloads.spec import WorkloadSpec
from repro.workloads.synthetic import make_stream


def _nas(name, size, desc, stream, sync, tags=()):
    return WorkloadSpec(
        name=name, suite="NAS", problem_size=size, description=desc,
        stream=stream, sync=sync, tags=("nas",) + tuple(tags),
    )


def nas_workloads() -> Dict[str, WorkloadSpec]:
    """The NAS entries of Table I (OpenMP + MPI variants)."""
    specs = {}

    # EP: embarrassingly parallel pseudo-random numbers — diverse mix,
    # no memory pressure, perfect scaling (Fig. 1: the SMT4 winner).
    ep_stream = make_stream(
        loads=0.14, stores=0.09, branches=0.11, fx=0.30,
        ilp=1.4, l1_mpki=1.5, l2_mpki=0.4, l3_mpki=0.05,
        locality_alpha=0.3, data_sharing=0.2, branch_mispredict_rate=0.008,
    )
    specs["EP"] = _nas(
        "EP", "D (OpenMP)",
        "Embarrassingly Parallel: computes pseudo-random numbers",
        ep_stream, SyncProfile(), tags=("openmp", "compute"),
    )
    specs["EP_MPI"] = _nas(
        "EP_MPI", "C (MPI)",
        "Embarrassingly Parallel, MPI processes",
        make_stream(
            loads=0.15, stores=0.09, branches=0.12, fx=0.31,
            ilp=1.4, l1_mpki=1.5, l2_mpki=0.4, l3_mpki=0.05,
            locality_alpha=0.3, data_sharing=0.0, branch_mispredict_rate=0.008,
        ),
        SyncProfile(work_inflation_coeff=0.05, work_inflation_half=16),
        tags=("mpi", "compute"),
    )

    # IS: integer bucket sort — integer/branch mix, random access, key
    # exchange barriers.  Sits just left of the POWER7 threshold with a
    # speedup a hair below 1 (one of Fig. 6's two left-side misses).
    specs["IS"] = _nas(
        "IS", "D",
        "Integer Sort: bucket sort for integers",
        make_stream(
            loads=0.26, stores=0.15, branches=0.12, fx=0.35, vs=0.12,
            ilp=1.5, l1_mpki=22, l2_mpki=9, l3_mpki=0.8,
            locality_alpha=1.2, data_sharing=0.4, mlp=4.0,
            branch_mispredict_rate=0.018,
        ),
        SyncProfile(block_coeff=0.30, block_half=10, serial_fraction=0.03,
                    work_inflation_coeff=1.6, work_inflation_half=24),
        tags=("openmp", "memory"),
    )
    specs["IS_MPI"] = _nas(
        "IS_MPI", "C (MPI)",
        "Integer Sort, MPI processes (all-to-all key exchange)",
        make_stream(
            loads=0.31, stores=0.16, branches=0.10, fx=0.41, vs=0.02,
            ilp=1.5, l1_mpki=24, l2_mpki=11, l3_mpki=3.2,
            locality_alpha=0.9, data_sharing=0.0, mlp=3.0,
            branch_mispredict_rate=0.018,
        ),
        SyncProfile(block_coeff=0.30, block_half=8, serial_fraction=0.03,
                    work_inflation_coeff=0.60, work_inflation_half=12),
        tags=("mpi", "memory"),
    )

    # BT: block-tridiagonal dense FP solver with blocked reuse.
    specs["BT"] = _nas(
        "BT", "C",
        "Block Tridiagonal: solves nonlinear PDEs using the BT method",
        make_stream(
            loads=0.24, stores=0.12, branches=0.05, fx=0.12, vs=0.47,
            ilp=1.9, l1_mpki=9, l2_mpki=3, l3_mpki=0.8,
            locality_alpha=0.8, data_sharing=0.3, mlp=3.0,
            branch_mispredict_rate=0.004,
        ),
        SyncProfile(serial_fraction=0.01, block_coeff=0.18, block_half=16,
                    work_inflation_coeff=0.10, work_inflation_half=20),
        tags=("openmp", "fp"),
    )

    # LU: SSOR solver, MPI pipelined wavefront.
    specs["LU_MPI"] = _nas(
        "LU_MPI", "C (MPI)",
        "Lower-Upper: solves nonlinear PDEs using the SSOR method",
        make_stream(
            loads=0.25, stores=0.11, branches=0.07, fx=0.14, vs=0.43,
            ilp=1.7, l1_mpki=8, l2_mpki=2.5, l3_mpki=0.6,
            locality_alpha=0.5, data_sharing=0.0, mlp=3.0,
            branch_mispredict_rate=0.006,
        ),
        SyncProfile(block_coeff=0.15, block_half=12,
                    work_inflation_coeff=0.15, work_inflation_half=16),
        tags=("mpi", "fp"),
    )

    # CG: sparse conjugate gradient — latency-bound indirection; SMT
    # overlaps the pointer-chasing stalls.
    specs["CG_MPI"] = _nas(
        "CG_MPI", "C (MPI)",
        "Conjugate Gradient: estimates eigenvalues of sparse matrices",
        make_stream(
            loads=0.32, stores=0.08, branches=0.08, fx=0.17, vs=0.35,
            ilp=1.2, l1_mpki=26, l2_mpki=12, l3_mpki=2.4,
            locality_alpha=0.3, data_sharing=0.0, mlp=2.5,
            branch_mispredict_rate=0.008,
        ),
        SyncProfile(block_coeff=0.15, block_half=12,
                    work_inflation_coeff=0.15, work_inflation_half=16),
        tags=("mpi", "memory-latency"),
    )

    # FT: 3-D FFT — strided streaming with transposes.
    specs["FT_MPI"] = _nas(
        "FT_MPI", "C (MPI)",
        "Fast Fourier Transform",
        make_stream(
            loads=0.26, stores=0.14, branches=0.04, fx=0.12, vs=0.44,
            ilp=1.8, l1_mpki=14, l2_mpki=6, l3_mpki=1.0,
            locality_alpha=0.35, data_sharing=0.0, mlp=5.0,
            branch_mispredict_rate=0.003,
        ),
        SyncProfile(block_coeff=0.15, block_half=10,
                    work_inflation_coeff=0.15, work_inflation_half=16),
        tags=("mpi", "fp"),
    )

    # MG: multigrid — bandwidth-leaning stencil streams; Fig. 1 shows it
    # oblivious to the SMT level (the other left-side near-miss).
    specs["MG"] = _nas(
        "MG", "D",
        "MultiGrid: approximate solution to a 3-d discrete Poisson equation",
        make_stream(
            loads=0.28, stores=0.13, branches=0.04, fx=0.11, vs=0.44,
            ilp=2.0, l1_mpki=18, l2_mpki=12, l3_mpki=8.0,
            locality_alpha=0.3, data_sharing=0.3, mlp=8.0,
            branch_mispredict_rate=0.003,
        ),
        SyncProfile(serial_fraction=0.015, block_coeff=0.12, block_half=12),
        tags=("openmp", "bandwidth"),
    )
    specs["MG_MPI"] = _nas(
        "MG_MPI", "C (MPI)",
        "MultiGrid, MPI processes",
        make_stream(
            loads=0.28, stores=0.13, branches=0.05, fx=0.12, vs=0.42,
            ilp=2.0, l1_mpki=16, l2_mpki=10, l3_mpki=7.0,
            locality_alpha=0.3, data_sharing=0.0, mlp=8.0,
            branch_mispredict_rate=0.004,
        ),
        SyncProfile(block_coeff=0.12, block_half=12,
                    work_inflation_coeff=0.10, work_inflation_half=16),
        tags=("mpi", "bandwidth"),
    )

    # OpenMP-only kernels used in the Nehalem experiments (Figs. 10/12).
    specs["CG"] = _nas(
        "CG", "C",
        "Conjugate Gradient, OpenMP",
        make_stream(
            loads=0.32, stores=0.08, branches=0.08, fx=0.16, vs=0.36,
            ilp=1.2, l1_mpki=25, l2_mpki=11, l3_mpki=2.0,
            locality_alpha=0.3, data_sharing=0.5, mlp=2.0,
            branch_mispredict_rate=0.008,
        ),
        SyncProfile(serial_fraction=0.01, block_coeff=0.08),
        tags=("openmp", "memory-latency"),
    )
    specs["FT"] = _nas(
        "FT", "C",
        "Fast Fourier Transform, OpenMP",
        make_stream(
            loads=0.26, stores=0.14, branches=0.04, fx=0.11, vs=0.45,
            ilp=1.8, l1_mpki=13, l2_mpki=5, l3_mpki=1.5,
            locality_alpha=0.35, data_sharing=0.4, mlp=4.0,
            branch_mispredict_rate=0.003,
        ),
        SyncProfile(serial_fraction=0.015, block_coeff=0.06),
        tags=("openmp", "fp"),
    )
    specs["LU"] = _nas(
        "LU", "C",
        "Lower-Upper SSOR solver, OpenMP",
        make_stream(
            loads=0.25, stores=0.11, branches=0.07, fx=0.13, vs=0.44,
            ilp=1.7, l1_mpki=9, l2_mpki=3, l3_mpki=0.8,
            locality_alpha=0.6, data_sharing=0.4, mlp=3.0,
            branch_mispredict_rate=0.006,
        ),
        SyncProfile(serial_fraction=0.01, block_coeff=0.12, block_half=8),
        tags=("openmp", "fp"),
    )
    specs["SP"] = _nas(
        "SP", "C",
        "Scalar Pentadiagonal PDE solver, OpenMP",
        make_stream(
            loads=0.27, stores=0.13, branches=0.04, fx=0.10, vs=0.46,
            ilp=2.1, l1_mpki=14, l2_mpki=7, l3_mpki=2.6,
            locality_alpha=0.4, data_sharing=0.4, mlp=5.0,
            branch_mispredict_rate=0.003,
        ),
        SyncProfile(serial_fraction=0.01, block_coeff=0.08),
        tags=("openmp", "bandwidth"),
    )
    specs["UA"] = _nas(
        "UA", "C",
        "Unstructured Adaptive mesh, OpenMP",
        make_stream(
            loads=0.28, stores=0.11, branches=0.08, fx=0.17, vs=0.36,
            ilp=1.5, l1_mpki=15, l2_mpki=6, l3_mpki=1.4,
            locality_alpha=0.45, data_sharing=0.4, mlp=2.5,
            branch_mispredict_rate=0.01,
        ),
        SyncProfile(serial_fraction=0.02, block_coeff=0.12, block_half=8),
        tags=("openmp", "irregular"),
    )

    # BT exists in both experiments; the OpenMP spec above serves both.
    return specs
