"""Synthetic workload builders.

Used three ways: as the archetypes behind the STREAM/SSCA2 entries of
Table I, as controllable inputs for property-based tests (hypothesis
draws parameters and the invariants must hold for *any* of them), and
as building blocks for custom experiments.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.classes import InstrClass, Mix
from repro.sim.stream import MemoryBehavior, StreamParams
from repro.simos.sync import SyncProfile
from repro.util.rng import RngStream
from repro.workloads.spec import WorkloadSpec


def make_stream(
    *,
    loads: float = 0.2,
    stores: float = 0.1,
    branches: float = 0.12,
    fx: float = 0.3,
    vs: Optional[float] = None,
    ilp: float = 1.5,
    l1_mpki: float = 5.0,
    l2_mpki: float = 2.0,
    l3_mpki: float = 0.5,
    locality_alpha: float = 0.5,
    data_sharing: float = 0.3,
    branch_mispredict_rate: float = 0.01,
    mlp: float = 2.0,
) -> StreamParams:
    """Build a stream from named fractions; ``vs`` defaults to the rest."""
    if vs is None:
        vs = 1.0 - (loads + stores + branches + fx)
        if vs < -1e-9:
            raise ValueError(
                f"class fractions exceed 1: {loads}+{stores}+{branches}+{fx}"
            )
        vs = max(0.0, vs)
    mix = Mix(
        {
            InstrClass.LOAD: loads,
            InstrClass.STORE: stores,
            InstrClass.BRANCH: branches,
            InstrClass.FX: fx,
            InstrClass.VS: vs,
        }
    )
    memory = MemoryBehavior(
        l1_mpki=l1_mpki,
        l2_mpki=min(l2_mpki, l1_mpki),
        l3_mpki=min(l3_mpki, l2_mpki, l1_mpki),
        locality_alpha=locality_alpha,
        data_sharing=data_sharing,
    )
    return StreamParams(
        mix=mix, ilp=ilp, memory=memory,
        branch_mispredict_rate=branch_mispredict_rate, mlp=mlp,
    )


def compute_bound_workload(name: str = "synthetic-compute") -> WorkloadSpec:
    """Diverse mix, tiny footprint, perfectly scalable — loves SMT."""
    return WorkloadSpec(
        name=name, suite="synthetic", problem_size="-",
        description="balanced-mix scalable compute kernel",
        stream=make_stream(loads=0.16, stores=0.10, branches=0.12, fx=0.30,
                           ilp=1.5, l1_mpki=2.0, l2_mpki=0.5, l3_mpki=0.1,
                           locality_alpha=0.4),
        sync=SyncProfile(),
        tags=("synthetic", "compute"),
    )


def bandwidth_bound_workload(name: str = "synthetic-bandwidth") -> WorkloadSpec:
    """Streaming misses that saturate DRAM — indifferent-to-hostile to SMT."""
    return WorkloadSpec(
        name=name, suite="synthetic", problem_size="-",
        description="DRAM-bandwidth-saturating streaming kernel",
        stream=make_stream(loads=0.35, stores=0.20, branches=0.05, fx=0.15,
                           ilp=2.5, l1_mpki=45, l2_mpki=42, l3_mpki=40,
                           locality_alpha=0.05, data_sharing=0.0, mlp=8.0,
                           branch_mispredict_rate=0.003),
        sync=SyncProfile(),
        tags=("synthetic", "bandwidth"),
    )


def spin_bound_workload(name: str = "synthetic-spin", *,
                        lock_serial_fraction: float = 0.3) -> WorkloadSpec:
    """A contended-lock kernel — the SMT4-hostile archetype.

    Besides the critical-section throughput cap, the lock line bounces
    between cores: misses grow steeply with co-runners
    (``locality_alpha`` high, base rates low), which is what makes the
    contention visible to the dispatch-held factor at high SMT levels.
    """
    return WorkloadSpec(
        name=name, suite="synthetic", problem_size="-",
        description="contended critical-section kernel",
        stream=make_stream(loads=0.28, stores=0.10, branches=0.18, fx=0.38,
                           ilp=1.3, l1_mpki=12, l2_mpki=4, l3_mpki=0.8,
                           locality_alpha=1.3, data_sharing=0.3,
                           branch_mispredict_rate=0.03),
        sync=SyncProfile(lock_serial_fraction=lock_serial_fraction,
                         lock_pingpong_coeff=1.2, lock_pingpong_half=8,
                         block_coeff=0.2, block_half=8),
        tags=("synthetic", "locks"),
    )


def random_workload(rng: RngStream, name: str = "synthetic-random") -> WorkloadSpec:
    """A random but valid workload, for property tests and fuzzing."""
    raw = rng.uniform(0.02, 1.0, size=5)
    raw = raw / raw.sum()
    l1 = float(rng.uniform(0.5, 50.0))
    l2 = float(rng.uniform(0.1, 1.0)) * l1
    l3 = float(rng.uniform(0.1, 1.0)) * l2
    return WorkloadSpec(
        name=name, suite="synthetic", problem_size="-",
        description="randomly drawn workload",
        stream=StreamParams(
            mix=Mix(raw),
            ilp=float(rng.uniform(0.6, 3.0)),
            memory=MemoryBehavior(
                l1_mpki=l1, l2_mpki=l2, l3_mpki=l3,
                locality_alpha=float(rng.uniform(0.0, 1.5)),
                data_sharing=float(rng.uniform(0.0, 1.0)),
            ),
            branch_mispredict_rate=float(rng.uniform(0.0, 0.08)),
            mlp=float(rng.uniform(1.0, 8.0)),
        ),
        sync=SyncProfile(
            serial_fraction=float(rng.uniform(0.0, 0.2)),
            spin_coeff=float(rng.uniform(0.0, 0.4)),
            block_coeff=float(rng.uniform(0.0, 0.4)),
            io_wait=float(rng.uniform(0.0, 0.3)),
            lock_serial_fraction=float(rng.uniform(0.0, 0.4)),
            lock_pingpong_coeff=float(rng.uniform(0.0, 1.0)),
            work_inflation_coeff=float(rng.uniform(0.0, 0.5)),
        ),
        tags=("synthetic", "random"),
    )
