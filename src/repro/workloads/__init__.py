"""Workload models: the paper's Table I benchmark catalog.

Each benchmark is a parameterized instruction-stream + scalability
model (:class:`WorkloadSpec`).  Parameters are calibrated from the
paper's own evidence — Table I descriptions ("lock heavy", "heavy I/O",
streaming), Fig. 7's instruction mixes and speedup ladder, Fig. 1's
SMT1-vs-SMT4 bars, and §IV-A's Streamcluster characterization (40%
loads, 8 L3 MPKI on Nehalem) — plus the general character of each suite
(SPEC OMP2001 = FP array codes, NAS = HPC kernels, PARSEC = emerging
multithreaded apps, SPECjbb/DayTrader = commercial Java/web).
"""

from repro.workloads.spec import WorkloadSpec
from repro.workloads.phases import Phase, PhasedWorkload
from repro.workloads.synthetic import (
    make_stream,
    spin_bound_workload,
    bandwidth_bound_workload,
    compute_bound_workload,
    random_workload,
)
from repro.workloads.catalog import (
    get_workload,
    power7_catalog,
    nehalem_catalog,
    all_workloads,
    TABLE1_ROWS,
)

__all__ = [
    "WorkloadSpec",
    "Phase",
    "PhasedWorkload",
    "make_stream",
    "spin_bound_workload",
    "bandwidth_bound_workload",
    "compute_bound_workload",
    "random_workload",
    "get_workload",
    "power7_catalog",
    "nehalem_catalog",
    "all_workloads",
    "TABLE1_ROWS",
]
