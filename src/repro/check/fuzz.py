"""Seeded protocol fuzzer for the prediction service.

Hammers a live :class:`~repro.serve.server.BackgroundServer` with a
deterministic stream of malformed NDJSON frames — binary garbage,
truncated JSON, schema violations, oversized lines, pipelined bursts,
mid-request disconnects — interleaved with valid requests, and holds
the server to three promises:

1. **every response is typed** — a JSON object with ``ok`` and either a
   ``result`` or an ``error`` whose ``code`` is one of the documented
   codes; never a stack trace, never a half-written line;
2. **nothing leaks** — at quiescence (after graceful stop) the
   ``serve.admitted`` and ``serve.settled`` telemetry counters agree,
   so every admitted request was settled by exactly one delivery;
3. **nothing crashes** — the event loop logged zero unhandled task
   exceptions (captured straight off the ``asyncio`` logger), and the
   server still answers a ping after the barrage.

Everything is driven by one ``random.Random(seed)``: a failing case
reproduces from ``(seed, cases)`` alone.
"""

from __future__ import annotations

import json
import logging
import random
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.check.report import PillarReport, Violation
from repro.obs import configure, get_tracer
from repro.serve.protocol import (
    ERR_CANCELLED,
    ERR_DEADLINE,
    ERR_INTERNAL,
    ERR_INVALID,
    ERR_OVERLOADED,
    ERR_SHUTTING_DOWN,
)
from repro.serve.server import BackgroundServer, ServeConfig

DEFAULT_CASES = 2000
DEFAULT_SEED = 1207

#: The documented error vocabulary; anything else is untyped.
KNOWN_ERROR_CODES = frozenset({
    ERR_INVALID, ERR_OVERLOADED, ERR_DEADLINE,
    ERR_SHUTTING_DOWN, ERR_CANCELLED, ERR_INTERNAL,
})

#: A complete, valid POWER7 counter reading for ``score`` requests
#: (simulation-free on the server, so the fuzzer can send them freely).
_SCORE_EVENTS = {
    "CYCLES": 1.0e9, "INSTRUCTIONS": 8.0e8, "DISP_HELD_RES": 2.0e8,
    "LD_CMPL": 2.0e8, "ST_CMPL": 1.0e8, "BR_CMPL": 8.0e7,
    "FX_CMPL": 3.0e8, "VS_CMPL": 1.2e8,
}

_PREDICT_WORKLOADS = ("EP", "SSCA2")


# -- frame generators ----------------------------------------------------
#
# Each generator takes (rng, frame_id) and returns the wire bytes for
# one frame.  "terminal" categories end the connection (the server
# cannot resync after them, or the frame deliberately has no newline).

def _valid_ping(rng: random.Random, fid: str) -> bytes:
    return (json.dumps({"id": fid, "op": "ping"}) + "\n").encode()


def _valid_score(rng: random.Random, fid: str) -> bytes:
    return (json.dumps({
        "id": fid, "op": "score",
        "params": {
            "arch": "p7", "events": _SCORE_EVENTS, "smt_level": 4,
            "wall_time_s": 2.0, "avg_thread_cpu_s": 1.6,
            "n_software_threads": 8,
        },
    }) + "\n").encode()


def _valid_predict(rng: random.Random, fid: str) -> bytes:
    return (json.dumps({
        "id": fid, "op": "predict", "deadline_ms": 60_000,
        "params": {"workload": rng.choice(_PREDICT_WORKLOADS), "arch": "p7"},
    }) + "\n").encode()


def _garbage(rng: random.Random, fid: str) -> bytes:
    n = rng.randint(1, 80)
    data = bytes(rng.randrange(256) for _ in range(n))
    return data.replace(b"\n", b"?") + b"\n"


def _truncated_json(rng: random.Random, fid: str) -> bytes:
    whole = json.dumps({"id": fid, "op": "ping", "params": {"x": [1, 2, 3]}})
    cut = rng.randint(1, len(whole) - 1)
    return (whole[:cut] + "\n").encode()


def _bad_schema(rng: random.Random, fid: str) -> bytes:
    variants: List[Any] = [
        {"op": "ping"},                                  # missing id
        {"id": 123, "op": "ping"},                       # id wrong type
        {"id": "", "op": "ping"},                        # empty id
        {"id": fid, "op": "launch_missiles"},            # unknown op
        {"id": fid},                                     # missing op
        {"id": fid, "op": "ping", "params": [1, 2]},     # params wrong type
        {"id": fid, "op": "ping", "params": "nope"},
        {"id": fid, "op": "ping", "deadline_ms": "soon"},
        {"id": fid, "op": "ping", "deadline_ms": -5},
        {"id": fid, "op": "predict", "params": {}},      # missing workload
        {"id": fid, "op": "predict",
         "params": {"workload": "no_such_workload"}},
        {"id": fid, "op": "predict", "params": {"workload": "EP",
                                                "arch": "vax11"}},
        {"id": fid, "op": "score", "params": {"events": "not-a-dict"}},
        {"id": fid, "op": "score", "params": {"events": {}}},
        {"id": fid, "op": "sweep", "params": {"strategy": "teleport"}},
        {"id": fid, "op": "sweep", "params": {"workloads": "EP"}},
        42, "hello", [1, 2, 3], None, True,              # non-object frames
    ]
    return (json.dumps(rng.choice(variants)) + "\n").encode()


def _whitespace(rng: random.Random, fid: str) -> bytes:
    return rng.choice((b"\n", b"   \n", b"\t\n"))


def _oversized(rng: random.Random, fid: str) -> bytes:
    # asyncio's StreamReader line limit is 64 KiB; blow well past it.
    pad = "a" * 140_000
    return (json.dumps({"id": fid, "op": "ping", "pad": pad}) + "\n").encode()


def _partial_frame(rng: random.Random, fid: str) -> bytes:
    # No trailing newline: the half-close flushes it as a final,
    # incomplete line — the wire image of a mid-request disconnect.
    return json.dumps({"id": fid, "op": "ping"}).encode()[:-rng.randint(2, 10)]


#: (name, generator, terminal, weight)
_CATEGORIES: Tuple[Tuple[str, Callable, bool, int], ...] = (
    ("ping", _valid_ping, False, 20),
    ("score", _valid_score, False, 15),
    ("predict", _valid_predict, False, 1),
    ("garbage", _garbage, False, 15),
    ("truncated_json", _truncated_json, False, 10),
    ("bad_schema", _bad_schema, False, 22),
    ("whitespace", _whitespace, False, 5),
    ("oversized_line", _oversized, True, 5),
    ("partial_frame", _partial_frame, True, 7),
)


# -- response validation -------------------------------------------------

def _response_problems(lines: List[bytes]) -> List[str]:
    """Why each response line violates the typed-response contract."""
    problems: List[str] = []
    for line in lines:
        try:
            obj = json.loads(line)
        except ValueError:
            problems.append(f"unparseable response line: {line[:120]!r}")
            continue
        if not isinstance(obj, dict) or not isinstance(obj.get("ok"), bool):
            problems.append(f"response is not a typed envelope: {obj!r}")
        elif obj["ok"]:
            if "result" not in obj:
                problems.append(f"ok response without result: {obj!r}")
        else:
            error = obj.get("error")
            if (not isinstance(error, dict)
                    or error.get("code") not in KNOWN_ERROR_CODES
                    or not isinstance(error.get("message"), str)):
                problems.append(f"untyped error response: {obj!r}")
    return problems


class _AsyncioErrorCapture(logging.Handler):
    """Collects ERROR records off the ``asyncio`` logger — the channel
    the event loop uses for unhandled task exceptions."""

    def __init__(self):
        super().__init__(level=logging.ERROR)
        self.records: List[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.records.append(self.format(record))
        except Exception:  # pragma: no cover - formatting must not throw
            self.records.append(record.getMessage())


# -- one connection ------------------------------------------------------

def _run_connection(
    host: str, port: int, frames: List[bytes], *,
    abort: bool, timeout_s: float,
) -> Tuple[List[bytes], bool]:
    """Send ``frames``, half-close, read to EOF.

    Returns ``(response_lines, clean_eof)``.  ``abort=True`` skips the
    read and slams the connection shut — the abandoned-work path.
    """
    responses: List[bytes] = []
    with socket.create_connection((host, port), timeout=timeout_s) as sock:
        sock.settimeout(timeout_s)
        try:
            for data in frames:
                sock.sendall(data)
        except (ConnectionError, OSError):
            pass                 # server already dropped us; read what's left
        if abort:
            return responses, True
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        buf = b""
        clean_eof = False
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            try:
                chunk = sock.recv(65536)
            except socket.timeout:
                break
            except (ConnectionError, OSError):
                clean_eof = True     # reset counts as closed, not hung
                break
            if not chunk:
                clean_eof = True
                break
            buf += chunk
    responses = [line for line in buf.split(b"\n") if line.strip()]
    return responses, clean_eof


# -- the pillar ----------------------------------------------------------

def run_fuzz_checks(
    *,
    cases: int = DEFAULT_CASES,
    seed: int = DEFAULT_SEED,
    config: Optional[ServeConfig] = None,
    timeout_s: float = 60.0,
    max_reported: int = 20,
) -> PillarReport:
    """Fuzz a live server with ``cases`` frames; see the module docstring
    for the three promises this enforces."""
    tracer = get_tracer()
    if not tracer.enabled:
        # The leak check reads serve.* counters, so telemetry must be on
        # (in-process only: no sink is installed).
        tracer = configure(enabled=True)
    if config is None:
        config = ServeConfig(
            queue_size=64,
            session={"threshold": 0.07, "use_cache": False},
        )
    rng = random.Random(seed)
    capture = _AsyncioErrorCapture()
    asyncio_logger = logging.getLogger("asyncio")
    before = tracer.counters()
    violations: List[Violation] = []
    category_counts: Dict[str, int] = {}
    sent = 0
    connections = 0
    responses_seen = 0
    response_problem_count = 0
    ping_ok = False
    ping_error: Optional[str] = None

    asyncio_logger.addHandler(capture)
    try:
        with BackgroundServer(config) as bg, \
                tracer.span("check.fuzz", cases=cases, seed=seed):
            host, port = bg.host, bg.port
            while sent < cases:
                connections += 1
                abort = rng.random() < 0.10
                n_frames = min(rng.randint(1, 6), cases - sent)
                frames: List[bytes] = []
                labels: List[str] = []
                for i in range(n_frames):
                    name, build, terminal, _w = rng.choices(
                        _CATEGORIES, weights=[c[3] for c in _CATEGORIES]
                    )[0]
                    frames.append(build(rng, f"f{sent + i}"))
                    labels.append(name)
                    category_counts[name] = category_counts.get(name, 0) + 1
                    if terminal:
                        break            # the server drops the connection
                sent += len(frames)
                responses, clean_eof = _run_connection(
                    host, port, frames, abort=abort, timeout_s=timeout_s,
                )
                if abort:
                    continue
                responses_seen += len(responses)
                subject = f"conn{connections} [{' '.join(labels)}] seed={seed}"
                problems = _response_problems(responses)
                response_problem_count += len(problems)
                if problems and len(violations) < max_reported:
                    violations.append(Violation(
                        pillar="fuzz", check="typed_responses",
                        subject=subject,
                        message=f"{len(problems)} untyped response(s)",
                        details={"problems": problems[:5]},
                    ))
                if not clean_eof and len(violations) < max_reported:
                    violations.append(Violation(
                        pillar="fuzz", check="connection_hang",
                        subject=subject,
                        message=(f"connection did not reach EOF within "
                                 f"{timeout_s:.0f}s of half-close"),
                    ))

            # Liveness: after the barrage the server must still answer.
            from repro.serve.client import ServeClient

            try:
                with ServeClient(host, port, timeout_s=timeout_s) as client:
                    ping_ok = client.ping()
                if not ping_ok:
                    ping_error = "ping returned false"
            except Exception as exc:
                ping_error = f"{type(exc).__name__}: {exc}"
        # BackgroundServer has fully drained here; counters are settled.
    finally:
        asyncio_logger.removeHandler(capture)

    after = tracer.counters()

    def delta(name: str) -> float:
        return after.get(name, 0.0) - before.get(name, 0.0)

    admitted, settled = delta("serve.admitted"), delta("serve.settled")
    if not ping_ok:
        violations.append(Violation(
            pillar="fuzz", check="liveness", subject=f"ping seed={seed}",
            message=f"server stopped answering after the fuzz run: {ping_error}",
        ))
    if admitted != settled:
        violations.append(Violation(
            pillar="fuzz", check="no_leaked_requests",
            subject=f"serve telemetry seed={seed}",
            message=(f"{admitted:.0f} request(s) admitted but "
                     f"{settled:.0f} settled — "
                     f"{abs(admitted - settled):.0f} leaked"),
            details={"admitted": admitted, "settled": settled},
        ))
    if capture.records:
        violations.append(Violation(
            pillar="fuzz", check="no_unhandled_exceptions",
            subject=f"asyncio event loop seed={seed}",
            message=(f"{len(capture.records)} unhandled exception(s) "
                     "logged by the event loop"),
            details={"records": capture.records[:10]},
        ))

    tracer.add("check.fuzz_cases", sent)
    tracer.add("check.fuzz_violations", len(violations))
    return PillarReport(
        pillar="fuzz",
        # frame validations + the three global promises
        checks_run=sent + 3,
        subjects=sent,
        violations=tuple(violations),
        stats={
            "cases": sent, "connections": connections, "seed": seed,
            "responses_seen": responses_seen,
            "response_problems": response_problem_count,
            "categories": dict(sorted(category_counts.items())),
            "admitted": admitted, "settled": settled,
            "unhandled_exceptions": len(capture.records),
        },
    )
