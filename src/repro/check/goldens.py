"""Tolerance-aware golden snapshots of the paper's headline figures.

Each golden file under ``tests/goldens/`` pins the summary statistics
of one figure (fig06–fig17) at the default seed: scatter points,
fitted thresholds, success rates, mix ladders, threshold curves.  The
files are *content-addressed*: they embed a fingerprint of the model
constants and architecture descriptions that produced them, so drift
reports can tell "the simulator's answer changed" apart from "the
golden was produced by a different model version" (the latter calls
for ``repro check --update-goldens``, the former for a bug hunt).

Float comparisons use :data:`REL_TOL`/:data:`ABS_TOL` — loose enough
for cross-platform libm/BLAS drift, tight enough that any semantic
change in the solvers trips the diff.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.check.report import PillarReport, Violation
from repro.obs import get_tracer

#: Cross-platform float drift allowance for golden comparisons.
REL_TOL = 1e-6
ABS_TOL = 1e-9

#: Environment override for the golden directory.
ENV_GOLDENS_DIR = "REPRO_GOLDENS_DIR"

DEFAULT_SEED = 11


def goldens_dir() -> Path:
    """``tests/goldens/`` at the repository root (or the env override)."""
    override = os.environ.get(ENV_GOLDENS_DIR)
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / "tests" / "goldens"


#: Memo for :func:`model_fingerprint`, keyed by the serialized model
#: constants.  The reference architectures are deterministic pure
#: constructors, so within one process their fingerprints can only
#: change together with the constants serialization — which is itself
#: cached and therefore a cheap exact key.
_FINGERPRINT_CACHE: Dict[str, str] = {}


#: Homogeneous reference architectures the fingerprint covers.  A fixed
#: list (not ``list_architectures()``): a test registering a throwaway
#: arch must not silently invalidate every golden on disk.
FINGERPRINT_ARCHS = ("power7", "nehalem", "armsmt")


def model_fingerprint() -> str:
    """Short hash of the model constants + per-figure architectures.

    Covers :data:`FINGERPRINT_ARCHS` plus every registered
    heterogeneous chip's full per-cluster spec (cluster architectures,
    bandwidth shares, power/area budget) — editing any cluster of
    ``biglittle`` must invalidate the hetero goldens.

    Memoized: golden and runcache checks call this on every comparison,
    and rebuilding + re-serializing the reference architectures per
    call dominated their runtime.  The memo key includes the hetero
    fingerprints (cheap: chips are memoized instances), so replacing a
    registered chip invalidates the cache.
    """
    import json as _json

    from repro.arch import get_architecture
    from repro.arch.hetero import get_hetero, hetero_fingerprint, list_hetero
    from repro.sim.runcache import _arch_fp_json, _constants_fp_json

    constants_json = _constants_fp_json()
    hetero_json = _json.dumps(
        [hetero_fingerprint(get_hetero(name)) for name in list_hetero()],
        sort_keys=True,
    )
    memo_key = constants_json + "\x00" + hetero_json
    hit = _FINGERPRINT_CACHE.get(memo_key)
    if hit is not None:
        return hit
    digest = hashlib.sha256()
    digest.update(constants_json.encode())
    for arch_name in FINGERPRINT_ARCHS:
        digest.update(b"\x00")
        digest.update(_arch_fp_json(get_architecture(arch_name)).encode())
    digest.update(b"\x00")
    digest.update(hetero_json.encode())
    fp = digest.hexdigest()[:16]
    _FINGERPRINT_CACHE.clear()
    _FINGERPRINT_CACHE[memo_key] = fp
    return fp


# -- figure summaries ----------------------------------------------------

def _scatter_summary(result) -> Dict[str, Any]:
    fitted = result.success()
    return {
        "system": result.system_name,
        "measure_level": result.measure_level,
        "high_level": result.high_level,
        "low_level": result.low_level,
        "points": {
            p.name: {"metric": p.metric, "speedup": p.speedup}
            for p in result.points
        },
        "skipped": sorted(result.skipped),
        "fitted_threshold": fitted.threshold,
        "n_correct": fitted.n_correct,
        "n_total": fitted.n_total,
        "misses": sorted(fitted.misses),
    }


def _mix_ladder_summary(result) -> Dict[str, Any]:
    return {
        "speedups": dict(result.speedups),
        "deviations": dict(result.deviations),
        "ideal": {klass.name: frac for klass, frac in result.ideal.items()},
        "mixes": {
            name: {klass.name: frac for klass, frac in mix.items()}
            for name, mix in result.mixes.items()
        },
    }


def _gini_summary(result) -> Dict[str, Any]:
    return {
        "best_range": list(result.best_range),
        "min_impurity": result.min_impurity,
        "curve_points": len(result.curve),
    }


def _ppi_summary(result) -> Dict[str, Any]:
    return {
        "best_threshold": result.best_threshold,
        "best_improvement_pct": result.best_improvement_pct,
        "plateau": list(result.plateau),
        "curve_points": len(result.curve),
    }


def _arm_transfer_summary(result) -> Dict[str, Any]:
    summary = _scatter_summary(result.scatter)
    summary.update({
        "gini_range": list(result.gini_range),
        "min_impurity": result.min_impurity,
        "ppi_threshold": result.ppi_threshold,
        "ppi_improvement_pct": result.ppi_improvement_pct,
        "threshold_valid": result.threshold_is_valid(),
    })
    return summary


def _hetero_summary(result) -> Dict[str, Any]:
    return {
        "chip": result.chip_name,
        "clusters": {
            name: {
                "gini_range": list(result.thresholds[name]),
                "threshold_valid": result.threshold_is_valid(name),
                "points": {
                    p.name: {"metric": p.metric, "speedup": p.speedup}
                    for p in scatter.points
                },
            }
            for name, scatter in result.scatters.items()
        },
        "predicted_vs_best": {
            workload: {
                cluster: list(levels) for cluster, levels in by_cluster.items()
            }
            for workload, by_cluster in result.predicted_vs_best().items()
        },
    }


#: figure name -> (catalog key, module name, summarizer).  Figures
#: sharing a catalog key reuse one ``run_catalog`` sweep; a ``None``
#: catalog key means the experiment owns its own sweeps (hetero chips
#: run one catalog per cluster).
_FIGURES: Dict[str, Tuple[Optional[str], str, Callable[[Any], Dict[str, Any]]]] = {
    "fig06": ("p7", "fig06_smt4v1_at4", _scatter_summary),
    "fig07": ("p7", "fig07_instruction_mix", _mix_ladder_summary),
    "fig08": ("p7", "fig08_smt4v2_at4", _scatter_summary),
    "fig09": ("p7", "fig09_smt2v1_at2", _scatter_summary),
    "fig10": ("nehalem", "fig10_nehalem", _scatter_summary),
    "fig11": ("p7", "fig11_at_smt1_p7", _scatter_summary),
    "fig12": ("nehalem", "fig12_at_smt1_nehalem", _scatter_summary),
    "fig13": ("p7x2", "fig13_two_chip_41", _scatter_summary),
    "fig14": ("p7x2", "fig14_two_chip_42", _scatter_summary),
    "fig15": ("p7x2", "fig15_two_chip_21", _scatter_summary),
    "fig16": ("p7", "fig16_gini", _gini_summary),
    "fig17": ("p7", "fig17_ppi", _ppi_summary),
    "armsmt01": ("armsmt", "armsmt_transfer", _arm_transfer_summary),
    "hetero01": (None, "hetero_biglittle", _hetero_summary),
}


def figure_names() -> Tuple[str, ...]:
    return tuple(_FIGURES)


def compute_summaries(
    figures: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
) -> Dict[str, Dict[str, Any]]:
    """Produce every requested figure's summary (catalogs shared)."""
    import importlib

    from repro.experiments.runner import run_catalog

    selected = list(figures) if figures is not None else list(_FIGURES)
    unknown = [f for f in selected if f not in _FIGURES]
    if unknown:
        raise ValueError(
            f"unknown figures {unknown}; known: {sorted(_FIGURES)}"
        )
    catalogs: Dict[str, Any] = {}
    summaries: Dict[str, Dict[str, Any]] = {}
    with get_tracer().span("check.golden_summaries", figures=len(selected)):
        for name in selected:
            catalog_key, module_name, summarize = _FIGURES[name]
            module = importlib.import_module(
                f"repro.experiments.{module_name}"
            )
            if catalog_key is None:
                summaries[name] = summarize(module.run(seed=seed))
                continue
            if catalog_key not in catalogs:
                catalogs[catalog_key] = run_catalog(catalog_key, seed=seed)
            summaries[name] = summarize(
                module.run(seed=seed, runs=catalogs[catalog_key])
            )
    return summaries


# -- persistence ---------------------------------------------------------

def golden_path(figure: str, directory: Optional[Path] = None) -> Path:
    return (directory or goldens_dir()) / f"{figure}.json"


def write_golden(figure: str, summary: Mapping[str, Any], *,
                 seed: int = DEFAULT_SEED,
                 directory: Optional[Path] = None) -> Path:
    path = golden_path(figure, directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "figure": figure,
        "seed": seed,
        "fingerprint": model_fingerprint(),
        "summary": summary,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def update_goldens(
    figures: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
    directory: Optional[Path] = None,
) -> List[Path]:
    """Recompute and rewrite golden files; returns the paths written."""
    summaries = compute_summaries(figures, seed=seed)
    return [
        write_golden(figure, summary, seed=seed, directory=directory)
        for figure, summary in summaries.items()
    ]


def load_golden(figure: str,
                directory: Optional[Path] = None) -> Optional[Dict[str, Any]]:
    path = golden_path(figure, directory)
    try:
        return json.loads(path.read_text())
    except OSError:
        return None


# -- comparison ----------------------------------------------------------

def diff_values(golden: Any, got: Any, *, rel_tol: float = REL_TOL,
                abs_tol: float = ABS_TOL, path: str = "") -> List[str]:
    """Human-readable paths where ``got`` drifts from ``golden``."""
    label = path or "<root>"
    if isinstance(golden, bool) or isinstance(got, bool):
        # bool is an int subclass; compare exactly and before numbers.
        # A bool on one side only is a type change (True == 1.0 in
        # Python, but not in a JSON snapshot), so flag that too.
        if golden != got or isinstance(golden, bool) != isinstance(got, bool):
            return [f"{label}: golden {golden!r} != got {got!r}"]
        return []
    if isinstance(golden, (int, float)) and isinstance(got, (int, float)):
        scale = max(abs(golden), abs(got))
        err = abs(golden - got)
        if err > abs_tol and (scale == 0 or err / scale > rel_tol):
            return [
                f"{label}: golden {golden!r} vs got {got!r} "
                f"(rel {err / scale if scale else float('inf'):.3e})"
            ]
        return []
    if isinstance(golden, Mapping) and isinstance(got, Mapping):
        problems: List[str] = []
        for key in sorted(set(golden) - set(got)):
            problems.append(f"{label}.{key}: missing from result")
        for key in sorted(set(got) - set(golden)):
            problems.append(f"{label}.{key}: not in golden")
        for key in sorted(set(golden) & set(got)):
            problems.extend(diff_values(
                golden[key], got[key], rel_tol=rel_tol, abs_tol=abs_tol,
                path=f"{path}.{key}" if path else str(key),
            ))
        return problems
    if isinstance(golden, (list, tuple)) and isinstance(got, (list, tuple)):
        if len(golden) != len(got):
            return [f"{label}: length {len(golden)} != {len(got)}"]
        problems = []
        for i, (a, b) in enumerate(zip(golden, got)):
            problems.extend(diff_values(
                a, b, rel_tol=rel_tol, abs_tol=abs_tol, path=f"{label}[{i}]"
            ))
        return problems
    if golden != got:
        return [f"{label}: golden {golden!r} != got {got!r}"]
    return []


def run_golden_checks(
    figures: Optional[Sequence[str]] = None,
    *,
    seed: int = DEFAULT_SEED,
    directory: Optional[Path] = None,
    rel_tol: float = REL_TOL,
    abs_tol: float = ABS_TOL,
) -> PillarReport:
    """Compare freshly computed figure summaries to the stored goldens."""
    selected = list(figures) if figures is not None else list(_FIGURES)
    summaries = compute_summaries(selected, seed=seed)
    fingerprint = model_fingerprint()
    violations: List[Violation] = []
    checks_run = 0
    for figure in selected:
        checks_run += 1
        golden = load_golden(figure, directory)
        if golden is None:
            violations.append(Violation(
                pillar="goldens", check="golden_present", subject=figure,
                message=(f"no golden stored at {golden_path(figure, directory)}"
                         "; run `repro check --update-goldens`"),
            ))
            continue
        stale = golden.get("fingerprint") != fingerprint
        problems = diff_values(golden.get("summary"), summaries[figure],
                               rel_tol=rel_tol, abs_tol=abs_tol)
        if problems:
            hint = (
                "model fingerprint changed since the golden was written — "
                "if the change is intentional, refresh with "
                "`repro check --update-goldens`"
                if stale else
                "model fingerprint matches the golden: this is a semantic "
                "drift in the simulator, not a stale snapshot"
            )
            violations.append(Violation(
                pillar="goldens", check="golden_match", subject=figure,
                message=(f"{len(problems)} field(s) drifted from the golden; "
                         f"{hint}"),
                details={"diffs": problems[:20],
                         "n_diffs": len(problems),
                         "golden_fingerprint": golden.get("fingerprint"),
                         "current_fingerprint": fingerprint},
            ))
        elif stale:
            violations.append(Violation(
                pillar="goldens", check="golden_fingerprint", subject=figure,
                message=("summary still matches but the golden was produced "
                         "by a different model fingerprint; refresh with "
                         "`repro check --update-goldens`"),
                details={"golden_fingerprint": golden.get("fingerprint"),
                         "current_fingerprint": fingerprint},
            ))
    get_tracer().add("check.golden_violations", len(violations))
    return PillarReport(
        pillar="goldens",
        checks_run=checks_run,
        subjects=len(selected),
        violations=tuple(violations),
        stats={"fingerprint": fingerprint, "figures": selected,
               "rel_tol": rel_tol},
    )
