"""Conformance and invariant checking for the SMTsm reproduction.

Four pillars, one verdict (see ``docs/testing.md``):

* :mod:`repro.check.invariants` — simulator physics laws evaluated
  over every run a sweep produces (and re-solved chip internals);
* :mod:`repro.check.differential` — the serial reference vs every
  fast path (batched, parallel, run cache, batched prediction), with
  ddmin minimization of any diverging batch;
* :mod:`repro.check.goldens` — tolerance-aware, content-addressed
  snapshots of the paper figures' summary statistics;
* :mod:`repro.check.fuzz` — a seeded protocol fuzzer holding the
  prediction service to typed responses, zero leaks, zero crashes.

Entry points: :func:`run_check` (programmatic) and the ``repro check``
CLI subcommand.
"""

from repro.check.differential import (
    compare_runs,
    ddmin,
    run_differential_checks,
)
from repro.check.fuzz import run_fuzz_checks
from repro.check.goldens import (
    diff_values,
    model_fingerprint,
    run_golden_checks,
    update_goldens,
)
from repro.check.invariants import (
    REGISTRY,
    InvariantContext,
    check_catalog_invariants,
    invariant,
)
from repro.check.report import (
    PILLARS,
    CheckReport,
    PillarReport,
    Violation,
)
from repro.check.runner import CheckOptions, run_check

__all__ = [
    "PILLARS",
    "REGISTRY",
    "CheckOptions",
    "CheckReport",
    "InvariantContext",
    "PillarReport",
    "Violation",
    "check_catalog_invariants",
    "compare_runs",
    "ddmin",
    "diff_values",
    "invariant",
    "model_fingerprint",
    "run_check",
    "run_differential_checks",
    "run_fuzz_checks",
    "run_golden_checks",
    "update_goldens",
]
