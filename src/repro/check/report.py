"""Typed results of a conformance run: violations, pillar reports, exit codes.

Every pillar of :mod:`repro.check` (invariants, differential, goldens,
fuzz) reduces to the same shape: it examined some number of subjects,
evaluated some number of checks, and produced zero or more
:class:`Violation` records.  A :class:`CheckReport` aggregates the
pillar reports, renders them for humans (``render``) or machines
(``payload``), and owns the CLI exit-code contract: zero iff every
pillar ran clean.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.util.tables import format_table

#: The four pillars, in report order.
PILLARS = ("invariants", "differential", "goldens", "fuzz")


@dataclass(frozen=True)
class Violation:
    """One broken guarantee.

    ``pillar`` names the family (one of :data:`PILLARS`), ``check`` the
    specific rule inside it, ``subject`` the scenario it was evaluated
    on (e.g. ``"EP@SMT4 seed=11 [p7 x1]"``), and ``details`` carries
    machine-readable evidence — observed values, tolerances, minimized
    reproducing scenarios.
    """

    pillar: str
    check: str
    subject: str
    message: str
    details: Mapping[str, Any] = field(default_factory=dict)

    def payload(self) -> Dict[str, Any]:
        return {
            "pillar": self.pillar,
            "check": self.check,
            "subject": self.subject,
            "message": self.message,
            "details": dict(self.details),
        }

    def render(self) -> str:
        return f"[{self.pillar}/{self.check}] {self.subject}: {self.message}"


@dataclass(frozen=True)
class PillarReport:
    """Outcome of one pillar."""

    pillar: str
    checks_run: int                     # rule evaluations performed
    subjects: int                       # scenarios/runs/frames examined
    violations: Sequence[Violation] = ()
    skipped: Optional[str] = None       # reason, when the pillar did not run
    stats: Mapping[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def payload(self) -> Dict[str, Any]:
        return {
            "pillar": self.pillar,
            "ok": self.ok,
            "checks_run": self.checks_run,
            "subjects": self.subjects,
            "skipped": self.skipped,
            "stats": dict(self.stats),
            "violations": [v.payload() for v in self.violations],
        }


def merge_pillar_reports(*reports: PillarReport) -> PillarReport:
    """Combine same-pillar sub-reports (e.g. a pillar's main sweep plus
    its cross-architecture coverage sweep) into one report.

    Counts add, violations concatenate, stats dicts merge (later
    reports win on key collisions); a merged report is skipped only if
    every part was skipped.
    """
    if not reports:
        raise ValueError("nothing to merge")
    pillars = {r.pillar for r in reports}
    if len(pillars) != 1:
        raise ValueError(f"cannot merge reports from different pillars: {pillars}")
    stats: Dict[str, Any] = {}
    for r in reports:
        stats.update(r.stats)
    skipped = None
    if all(r.skipped for r in reports):
        skipped = "; ".join(r.skipped for r in reports)
    return PillarReport(
        pillar=reports[0].pillar,
        checks_run=sum(r.checks_run for r in reports),
        subjects=sum(r.subjects for r in reports),
        violations=tuple(v for r in reports for v in r.violations),
        skipped=skipped,
        stats=stats,
    )


@dataclass(frozen=True)
class CheckReport:
    """Everything one ``repro check`` invocation found."""

    pillars: Sequence[PillarReport]

    @property
    def ok(self) -> bool:
        return all(p.ok for p in self.pillars)

    @property
    def violations(self) -> List[Violation]:
        return [v for p in self.pillars for v in p.violations]

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def payload(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "pillars": [p.payload() for p in self.pillars],
            "n_violations": len(self.violations),
        }

    def render(self) -> str:
        rows = []
        for p in self.pillars:
            status = "SKIP" if p.skipped else ("ok" if p.ok else "FAIL")
            note = p.skipped or f"{len(p.violations)} violation(s)"
            rows.append([p.pillar, status, p.checks_run, p.subjects, note])
        lines = [
            format_table(
                ["pillar", "status", "checks", "subjects", "notes"], rows,
                title="repro check",
            )
        ]
        for v in self.violations:
            lines.append("")
            lines.append(v.render())
            for key, value in v.details.items():
                lines.append(f"    {key}: {value}")
        lines.append("")
        lines.append("RESULT: " + ("PASS" if self.ok else
                                   f"FAIL ({len(self.violations)} violation(s))"))
        return "\n".join(lines)
