"""Differential testing: every fast path must match the reference path.

The repository keeps several ways to execute a sweep
(``run_catalog(strategy="columnar"|"surrogate"|"batched"|"serial"|
"parallel")``), a persistent run cache, and a batched prediction
facade — the exact paths are documented as "semantically equivalent to
floating-point round-off" and the surrogate as "within its calibrated
error bound or not at all".  This pillar *executes* those claims
McKeeman-style: run identical scenario sets down every path, compare
field by field at :data:`REL_TOL` (exact paths) or
:data:`SURROGATE_REL_TOL` (surrogate-accepted rows), and when a
divergence appears, shrink the batch with a ddmin-style minimizer so
the report carries the smallest scenario set that still reproduces it
(batched solvers can diverge only in the *company* of other scenarios —
the lockstep bisection couples their trajectories).
"""

from __future__ import annotations

import tempfile
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.check.report import PillarReport, Violation
from repro.experiments.runner import resolve_system
from repro.obs import get_tracer
from repro.sim.engine import DEFAULT_WORK, RunSpec, simulate_many, simulate_run
from repro.sim.results import RunResult
from repro.sim.runcache import RunCache

#: The documented equivalence bound for the fast paths.
REL_TOL = 1e-9

#: The documented error bound for surrogate-accepted answers.  Rows the
#: surrogate refuses (leverage or residual reject) fall back to the full
#: columnar solver and are held to :data:`REL_TOL` instead.
SURROGATE_REL_TOL = 1e-2

#: Default scenario set: a CPU-bound kernel, an irregular memory-bound
#: graph code, a bandwidth-hungry streaming code, and a lock-contended
#: commercial workload — together they exercise the sync-free short
#: circuit, the spin fixed point, the bandwidth bisection, and the
#: water-filling throttle.
DEFAULT_WORKLOADS = ("EP", "SSCA2", "Fluidanimate", "SPECjbb_contention")


def _scalar_fields(result: RunResult) -> Dict[str, float]:
    times = result.times
    return {
        "wall_time_s": times.wall_time_s,
        "serial_time_s": times.serial_time_s,
        "parallel_time_s": times.parallel_time_s,
        "total_cpu_s": times.total_cpu_s,
        "performance": result.performance,
        "spin_fraction": result.spin_fraction,
        "blocked_fraction": result.blocked_fraction,
        "mem_latency_mult": result.mem_latency_mult,
        "mem_utilization": result.mem_utilization,
        "dispatch_held_fraction": result.dispatch_held_fraction,
    }


def compare_runs(a: RunResult, b: RunResult,
                 rel_tol: float = REL_TOL) -> List[Tuple[str, float]]:
    """Field-by-field comparison; returns ``(field, rel_error)`` pairs
    exceeding ``rel_tol`` (empty list = equivalent)."""

    def rel(x: float, y: float) -> float:
        scale = max(abs(x), abs(y))
        return 0.0 if scale == 0.0 else abs(x - y) / scale

    diffs: List[Tuple[str, float]] = []
    fa, fb = _scalar_fields(a), _scalar_fields(b)
    for field in fa:
        err = rel(fa[field], fb[field])
        if err > rel_tol:
            diffs.append((field, err))
    if len(a.per_thread_ipc) != len(b.per_thread_ipc):
        diffs.append(("per_thread_ipc.shape", float("inf")))
    else:
        ipc_a = np.asarray(a.per_thread_ipc)
        ipc_b = np.asarray(b.per_thread_ipc)
        scale = np.maximum(np.abs(ipc_a), np.abs(ipc_b))
        err_vec = np.where(scale > 0, np.abs(ipc_a - ipc_b) / np.maximum(scale, 1e-300), 0.0)
        if err_vec.size and float(err_vec.max()) > rel_tol:
            diffs.append(("per_thread_ipc", float(err_vec.max())))
    events = set(a.events) | set(b.events)
    worst_event, worst_err = None, 0.0
    for event in events:
        err = rel(a.events.get(event, 0.0), b.events.get(event, 0.0))
        if err > worst_err:
            worst_event, worst_err = event, err
    if worst_err > rel_tol:
        diffs.append((f"events.{worst_event}", worst_err))
    return diffs


def ddmin(indices: Sequence[int],
          still_fails: Callable[[List[int]], bool]) -> List[int]:
    """Zeller/Hildebrandt delta debugging over scenario indices.

    Shrinks ``indices`` to a subset on which ``still_fails`` is still
    true (1-minimal up to the chunk granularity the budget allows).
    """
    current = list(indices)
    n = 2
    while len(current) >= 2:
        size = max(1, len(current) // n)
        chunks = [current[i:i + size] for i in range(0, len(current), size)]
        reduced = False
        for chunk in chunks:
            complement = [i for i in current if i not in chunk]
            if complement and still_fails(complement):
                current = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(current):
                break
            n = min(len(current), n * 2)
    return current


def _build_specs(system, workloads: Sequence[str], levels: Sequence[int],
                 seed: int, work: float) -> Tuple[List[str], List[RunSpec]]:
    from repro.workloads.catalog import all_workloads

    specs = all_workloads()
    labels: List[str] = []
    run_specs: List[RunSpec] = []
    for name in workloads:
        workload = specs[name]
        for level in levels:
            labels.append(f"{name}@SMT{level}")
            run_specs.append(RunSpec(
                system=system,
                smt_level=level,
                stream=workload.stream,
                sync=workload.sync,
                useful_instructions=work,
                seed=seed,
            ))
    return labels, run_specs


def run_differential_checks(
    *,
    arch: str = "p7",
    workloads: Sequence[str] = DEFAULT_WORKLOADS,
    levels: Optional[Sequence[int]] = None,
    seed: int = 11,
    work: float = DEFAULT_WORK,
    rel_tol: float = REL_TOL,
    include_parallel: bool = True,
    simulate_batch: Optional[Callable[[Sequence[RunSpec]], List[RunResult]]] = None,
) -> PillarReport:
    """Run the scenario set down every path and compare to the reference.

    Paths exercised against the serial ``simulate_run`` reference:

    * the vectorized batch engine (``simulate_many``) — with ddmin
      batch minimization on divergence;
    * the columnar :class:`~repro.sim.table.ScenarioTable` engine
      (``simulate_many_columnar``) — with ddmin batch minimization on
      divergence;
    * the calibrated surrogate fast path
      (``simulate_many_surrogate``) — accepted rows held to
      :data:`SURROGATE_REL_TOL`, fallback rows to ``rel_tol``, and the
      surrogate must accept at least one scenario of the set (a model
      that always falls back silently loses the fast path);
    * the multiprocessing parallel runner (skipped when the platform
      cannot fork a pool; its in-process fallback is then already the
      reference path);
    * a cold-vs-warm run-cache round trip (persisted payloads must
      reconstruct the result exactly);
    * ``Session.predict`` vs ``Session.predict_many`` over the same
      queries.

    ``simulate_batch`` overrides the batched path (test seam: the
    injected-divergence acceptance test wraps ``simulate_many``).
    """
    system = resolve_system(arch)
    if levels is None:
        levels = tuple(system.arch.smt_levels)
    labels, specs = _build_specs(system, workloads, levels, seed, work)
    batch_fn = simulate_batch or simulate_many
    violations: List[Violation] = []
    checks_run = 0
    tracer = get_tracer()

    with tracer.span("check.differential", scenarios=len(specs)):
        reference = [simulate_run(spec) for spec in specs]

        # -- batched vs serial ------------------------------------------
        batched = batch_fn(specs)
        divergent: List[int] = []
        for i, (ref, got) in enumerate(zip(reference, batched)):
            checks_run += 1
            diffs = compare_runs(ref, got, rel_tol)
            if diffs:
                divergent.append(i)
                field, err = max(diffs, key=lambda d: d[1])
                violations.append(Violation(
                    pillar="differential", check="batched_vs_serial",
                    subject=labels[i],
                    message=(f"batched strategy diverges from the serial "
                             f"reference on {field} (rel {err:.3e})"),
                    details={
                        "field": field, "rel_error": err, "rel_tol": rel_tol,
                        "all_fields": dict(diffs),
                        "minimized_scenarios": _minimize_batch(
                            specs, labels, reference, batch_fn, rel_tol, i
                        ),
                    },
                ))

        # -- columnar table vs serial -----------------------------------
        from repro.sim.table import simulate_many_columnar

        columnar = simulate_many_columnar(specs)
        for i, (ref, got) in enumerate(zip(reference, columnar)):
            checks_run += 1
            diffs = compare_runs(ref, got, rel_tol)
            if diffs:
                field, err = max(diffs, key=lambda d: d[1])
                violations.append(Violation(
                    pillar="differential", check="columnar_vs_serial",
                    subject=labels[i],
                    message=(f"columnar strategy diverges from the serial "
                             f"reference on {field} (rel {err:.3e})"),
                    details={
                        "field": field, "rel_error": err, "rel_tol": rel_tol,
                        "all_fields": dict(diffs),
                        "minimized_scenarios": _minimize_batch(
                            specs, labels, reference, simulate_many_columnar,
                            rel_tol, i,
                        ),
                    },
                ))

        # -- surrogate vs solver ----------------------------------------
        from repro.sim.surrogate import simulate_many_surrogate

        surrogate, accepted = simulate_many_surrogate(specs)
        checks_run += 1
        if not any(accepted):
            violations.append(Violation(
                pillar="differential", check="surrogate_vs_solver",
                subject="(whole batch)",
                message=("surrogate accepted no scenario of the default "
                         "set — the fast path never engages"),
                details={"accepted": 0, "scenarios": len(specs),
                         "minimized_scenarios": list(labels)},
            ))
        for i, (ref, got, hit) in enumerate(zip(reference, surrogate,
                                                accepted)):
            checks_run += 1
            bound = SURROGATE_REL_TOL if hit else rel_tol
            diffs = compare_runs(ref, got, bound)
            if diffs:
                field, err = max(diffs, key=lambda d: d[1])
                path = "accepted answer" if hit else "solver fallback"
                violations.append(Violation(
                    pillar="differential", check="surrogate_vs_solver",
                    subject=labels[i],
                    message=(f"surrogate {path} diverges from the serial "
                             f"reference on {field} (rel {err:.3e}, bound "
                             f"{bound:.0e})"),
                    details={"field": field, "rel_error": err,
                             "rel_tol": bound, "accepted": hit,
                             "all_fields": dict(diffs),
                             "minimized_scenarios": [labels[i]]},
                ))

        # -- parallel vs serial -----------------------------------------
        if include_parallel:
            from repro.experiments.runner import _simulate_parallel

            parallel = _simulate_parallel(specs, jobs=2)
            for i, (ref, got) in enumerate(zip(reference, parallel)):
                checks_run += 1
                diffs = compare_runs(ref, got, rel_tol)
                if diffs:
                    field, err = max(diffs, key=lambda d: d[1])
                    violations.append(Violation(
                        pillar="differential", check="parallel_vs_serial",
                        subject=labels[i],
                        message=(f"parallel strategy diverges from the serial "
                                 f"reference on {field} (rel {err:.3e})"),
                        details={"field": field, "rel_error": err,
                                 "rel_tol": rel_tol,
                                 "minimized_scenarios": [labels[i]]},
                    ))

        # -- cold vs warm run cache -------------------------------------
        with tempfile.TemporaryDirectory(prefix="repro-check-cache-") as tmp:
            cache = RunCache(tmp)
            for i, (spec, ref) in enumerate(zip(specs, reference)):
                checks_run += 1
                cache.put(spec, ref)
                warm = cache.get(spec)
                if warm is None:
                    violations.append(Violation(
                        pillar="differential", check="runcache_roundtrip",
                        subject=labels[i],
                        message="stored run did not come back on a warm lookup",
                        details={"minimized_scenarios": [labels[i]]},
                    ))
                    continue
                diffs = compare_runs(ref, warm, rel_tol)
                if diffs:
                    field, err = max(diffs, key=lambda d: d[1])
                    violations.append(Violation(
                        pillar="differential", check="runcache_roundtrip",
                        subject=labels[i],
                        message=(f"warm cache hit diverges from the stored "
                                 f"run on {field} (rel {err:.3e})"),
                        details={"field": field, "rel_error": err,
                                 "rel_tol": rel_tol,
                                 "minimized_scenarios": [labels[i]]},
                    ))

        # -- predict vs predict_many ------------------------------------
        from repro.api import PredictQuery, Session

        session = Session(arch, seed=seed, work=work, use_cache=False,
                          threshold=0.07)
        queries = [PredictQuery(name) for name in workloads]
        many = session.predict_many(queries)
        for query, batched_pred in zip(queries, many):
            checks_run += 1
            single = session.predict(query.workload)
            if single.payload() != batched_pred.payload():
                diff_fields = [
                    key for key in single.payload()
                    if single.payload()[key] != batched_pred.payload()[key]
                ]
                violations.append(Violation(
                    pillar="differential", check="predict_vs_predict_many",
                    subject=str(query.workload),
                    message=("predict and predict_many disagree on "
                             + ", ".join(diff_fields)),
                    details={"fields": diff_fields,
                             "minimized_scenarios": [str(query.workload)]},
                ))

    tracer.add("check.differential_checks", checks_run)
    tracer.add("check.differential_violations", len(violations))
    return PillarReport(
        pillar="differential",
        checks_run=checks_run,
        subjects=len(specs),
        violations=tuple(violations),
        stats={"scenarios": list(labels), "rel_tol": rel_tol,
               "surrogate_rel_tol": SURROGATE_REL_TOL,
               "surrogate_accepted": int(sum(accepted)),
               "parallel_included": include_parallel},
    )


#: Architectures (beyond the main ``--arch`` target) and hetero chips
#: the cross-architecture sweep pins by default.
CROSS_ARCHS = ("armsmt",)
CROSS_HETERO = ("biglittle",)
#: A lighter workload pair for the cross sweep: the sync-free and the
#: lock-contended extremes (the two fixed-point regimes).
CROSS_WORKLOADS = ("EP", "SPECjbb_contention")


def run_cross_arch_differential(
    *,
    archs: Sequence[str] = CROSS_ARCHS,
    hetero: Sequence[str] = CROSS_HETERO,
    workloads: Sequence[str] = CROSS_WORKLOADS,
    seed: int = 11,
    work: float = DEFAULT_WORK,
    rel_tol: float = REL_TOL,
) -> PillarReport:
    """Serial-vs-columnar equivalence on the non-default architectures.

    The full differential pillar exercises every execution path on one
    architecture; this sweep pins the core claim — the columnar engine
    matches the scalar reference to :data:`REL_TOL` — on each extra
    architecture in ``archs`` and on every cluster of each heterogeneous
    chip in ``hetero`` (per-cluster decomposition, mixed SMT ceilings).
    """
    from repro.arch.hetero import get_hetero
    from repro.sim.hetero import HeteroRunSpec, simulate_many_hetero
    from repro.sim.table import simulate_many_columnar
    from repro.workloads.catalog import all_workloads

    catalog = all_workloads()
    violations: List[Violation] = []
    checks_run = 0
    subjects = 0
    tracer = get_tracer()

    def record(check: str, label: str, ref: RunResult, got: RunResult):
        nonlocal checks_run
        checks_run += 1
        diffs = compare_runs(ref, got, rel_tol)
        if diffs:
            field, err = max(diffs, key=lambda d: d[1])
            violations.append(Violation(
                pillar="differential", check=check, subject=label,
                message=(f"columnar diverges from the serial reference on "
                         f"{field} (rel {err:.3e})"),
                details={"field": field, "rel_error": err, "rel_tol": rel_tol,
                         "all_fields": dict(diffs)},
            ))

    with tracer.span("check.cross_arch_differential",
                     archs=",".join(list(archs) + list(hetero))):
        for arch in archs:
            system = resolve_system(arch)
            labels, specs = _build_specs(
                system, workloads, tuple(system.arch.smt_levels), seed, work,
            )
            subjects += len(specs)
            reference = [simulate_run(spec) for spec in specs]
            columnar = simulate_many_columnar(specs)
            for label, ref, got in zip(labels, reference, columnar):
                record("cross_arch_columnar_vs_serial",
                       f"{label} [{system.arch.name}]", ref, got)

        for chip_name in hetero:
            chip = get_hetero(chip_name)
            hspecs = [
                HeteroRunSpec(
                    chip=chip, stream=catalog[name].stream,
                    sync=catalog[name].sync,
                    useful_instructions=work, seed=seed,
                )
                for name in workloads
            ]
            subjects += len(hspecs) * len(chip.clusters)
            serial = simulate_many_hetero(hspecs, strategy="serial")
            columnar = simulate_many_hetero(hspecs, strategy="columnar")
            for name, ref_h, got_h in zip(workloads, serial, columnar):
                for cluster in chip.cluster_names:
                    record(
                        "hetero_columnar_vs_serial",
                        f"{name} [{chip_name}.{cluster}]",
                        ref_h.cluster_results[cluster],
                        got_h.cluster_results[cluster],
                    )

    tracer.add("check.differential_checks", checks_run)
    tracer.add("check.differential_violations", len(violations))
    return PillarReport(
        pillar="differential",
        checks_run=checks_run,
        subjects=subjects,
        violations=tuple(violations),
        stats={"cross_archs": list(archs), "cross_hetero": list(hetero)},
    )


def _minimize_batch(
    specs: List[RunSpec],
    labels: List[str],
    reference: List[RunResult],
    batch_fn: Callable[[Sequence[RunSpec]], List[RunResult]],
    rel_tol: float,
    target: int,
) -> List[str]:
    """Smallest scenario subset whose *batched* solve still diverges.

    The subset must keep reproducing a divergence on at least one of
    its members (not necessarily ``target``: the minimizer follows the
    failure, not the symptom's original index).
    """

    def still_fails(subset: List[int]) -> bool:
        try:
            got = batch_fn([specs[i] for i in subset])
        except Exception:
            return True  # crashing on the subset still reproduces a defect
        return any(
            compare_runs(reference[i], out, rel_tol)
            for i, out in zip(subset, got)
        )

    candidates = list(range(len(specs)))
    if not still_fails(candidates):  # pragma: no cover - flaky divergence
        return [labels[target]]
    minimal = ddmin(candidates, still_fails)
    get_tracer().add("check.ddmin_reductions", len(specs) - len(minimal))
    return [labels[i] for i in minimal]
