"""Simulator physics invariants — the machine-checkable model laws.

Every law the analytic model is supposed to obey, written as an
executable assertion over the artifacts a sweep produces.  Two scopes:

* ``run`` invariants hold for any :class:`~repro.sim.results.RunResult`
  (time accounting, counter consistency, metric sanity).  Counters are
  jittered independently at ``noise_rel`` (default 1%), so cross-counter
  laws get a statistical slack of ``NOISE_SIGMA * noise_rel`` while
  exact identities (wall = serial + parallel, which jitter scales by a
  common factor) are held to ``EXACT_TOL``.
* ``chip`` invariants hold for a fresh noise-free
  :class:`~repro.sim.chip.ChipSolution` (port utilization, structural
  throttles, cache-miss hierarchy) — quantities a ``RunResult`` does
  not retain, so the pillar re-solves a sample of scenarios.

The registry is open: tests (and future subsystems) register extra
invariants with the :func:`invariant` decorator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.check.report import PillarReport, Violation
from repro.core.metric import smtsm, smtsm_from_run
from repro.experiments.runner import CatalogRuns
from repro.obs import get_tracer
from repro.sim.chip import ChipSolution, solve_chip
from repro.sim.engine import MAX_SPIN
from repro.sim.fast_core import effective_smt_mode
from repro.sim.memory import MAX_LATENCY_MULT
from repro.sim.results import RunResult
from repro.simos.scheduler import place_threads

#: Tolerance for identities that hold to floating-point round-off.
EXACT_TOL = 1e-9
#: Cross-counter laws compare *independently* jittered counters; an
#: 8-sigma band keeps the false-positive rate negligible over a full
#: catalog while still catching any systematic violation.
NOISE_SIGMA = 8.0

#: One reported problem: (message, details).
Problem = Tuple[str, Dict[str, float]]


@dataclass(frozen=True)
class InvariantContext:
    """Shared facts an invariant may need beyond its subject."""

    noise_rel: float = 0.01

    @property
    def noise_slack(self) -> float:
        return max(EXACT_TOL, NOISE_SIGMA * self.noise_rel)


@dataclass(frozen=True)
class Invariant:
    name: str
    scope: str                     # "run" | "chip"
    description: str
    fn: Callable[..., Iterable[Problem]]


#: name -> Invariant, in registration order.
REGISTRY: Dict[str, Invariant] = {}


def invariant(name: str, scope: str, description: str):
    """Register a model law.  The wrapped function receives
    ``(subject, ctx)`` and yields ``(message, details)`` problems."""
    if scope not in ("run", "chip"):
        raise ValueError(f"unknown invariant scope {scope!r}")

    def register(fn):
        if name in REGISTRY:
            raise ValueError(f"duplicate invariant name {name!r}")
        REGISTRY[name] = Invariant(name=name, scope=scope,
                                   description=description, fn=fn)
        return fn

    return register


def invariants_for(scope: str) -> List[Invariant]:
    return [inv for inv in REGISTRY.values() if inv.scope == scope]


# -- run-scope laws ------------------------------------------------------

@invariant("times_additive", "run",
           "wall time decomposes exactly into serial + parallel phases")
def _times_additive(result: RunResult, ctx: InvariantContext):
    times = result.times
    residual = abs(times.wall_time_s
                   - (times.serial_time_s + times.parallel_time_s))
    if residual > EXACT_TOL * times.wall_time_s:
        yield (
            "wall != serial + parallel beyond round-off",
            {"wall_s": times.wall_time_s, "serial_s": times.serial_time_s,
             "parallel_s": times.parallel_time_s,
             "rel_residual": residual / times.wall_time_s},
        )


@invariant("cpu_budget", "run",
           "total CPU time fits in wall x threads; wall >= avg thread time")
def _cpu_budget(result: RunResult, ctx: InvariantContext):
    times = result.times
    budget = times.wall_time_s * times.n_threads
    if times.total_cpu_s > budget * (1 + EXACT_TOL):
        yield (
            "total CPU time exceeds the wall x threads budget",
            {"total_cpu_s": times.total_cpu_s, "budget_s": budget},
        )
    if times.wall_time_s < times.avg_thread_cpu_s * (1 - EXACT_TOL):
        yield (
            "wall time below average per-thread CPU time",
            {"wall_s": times.wall_time_s,
             "avg_thread_cpu_s": times.avg_thread_cpu_s},
        )


@invariant("fractions_in_range", "run",
           "spin/blocked/dispatch-held/memory quantities stay in their domains")
def _fractions_in_range(result: RunResult, ctx: InvariantContext):
    bounds = {
        "spin_fraction": (result.spin_fraction, 0.0, MAX_SPIN),
        "blocked_fraction": (result.blocked_fraction, 0.0, 1.0),
        "dispatch_held_fraction": (result.dispatch_held_fraction, 0.0, 1.0),
        "mem_utilization": (result.mem_utilization, 0.0, 1.0),
        "mem_latency_mult": (result.mem_latency_mult, 1.0, MAX_LATENCY_MULT),
    }
    for name, (value, lo, hi) in bounds.items():
        if not (lo - EXACT_TOL <= value <= hi + EXACT_TOL):
            yield (
                f"{name} out of [{lo}, {hi}]",
                {name: value, "lo": lo, "hi": hi},
            )


@invariant("counters_nonnegative", "run",
           "no hardware counter goes negative")
def _counters_nonnegative(result: RunResult, ctx: InvariantContext):
    for event, count in result.events.items():
        if count < 0:
            yield (f"counter {event} is negative", {event: count})


@invariant("miss_hierarchy", "run",
           "cache misses shrink down the hierarchy (L1 >= L2 >= L3)")
def _miss_hierarchy(result: RunResult, ctx: InvariantContext):
    slack = 1 + ctx.noise_slack
    l1 = result.events.get("L1_DMISS")
    l2 = result.events.get("L2_MISS")
    l3 = result.events.get("L3_MISS")
    if None in (l1, l2, l3):
        return
    if l2 > l1 * slack or l3 > l2 * slack:
        yield (
            "miss counts grow down the cache hierarchy",
            {"L1_DMISS": l1, "L2_MISS": l2, "L3_MISS": l3,
             "noise_slack": ctx.noise_slack},
        )


@invariant("class_counts_sum", "run",
           "per-class completion counters sum to INSTRUCTIONS (mod noise)")
def _class_counts_sum(result: RunResult, ctx: InvariantContext):
    from repro.counters.events import CLASS_COUNT_EVENTS

    instructions = result.events.get("INSTRUCTIONS")
    if not instructions:
        return
    total = sum(result.events.get(event, 0.0) for event in CLASS_COUNT_EVENTS)
    rel = abs(total - instructions) / instructions
    if rel > ctx.noise_slack:
        yield (
            "class-count sum drifts from INSTRUCTIONS beyond noise",
            {"class_sum": total, "instructions": instructions,
             "rel_error": rel, "noise_slack": ctx.noise_slack},
        )


@invariant("dispatch_held_counter", "run",
           "DISP_HELD_RES cannot exceed CYCLES (mod noise)")
def _dispatch_held_counter(result: RunResult, ctx: InvariantContext):
    cycles = result.events.get("CYCLES")
    held = result.events.get("DISP_HELD_RES")
    if not cycles or held is None:
        return
    if held > cycles * (1 + ctx.noise_slack):
        yield (
            "dispatch-held cycles exceed total cycles",
            {"DISP_HELD_RES": held, "CYCLES": cycles,
             "noise_slack": ctx.noise_slack},
        )


@invariant("throughput_conservation", "run",
           "useful throughput never exceeds the executed instruction rate")
def _throughput_conservation(result: RunResult, ctx: InvariantContext):
    executed_rate = result.aggregate_ipc * result.arch.cycles_per_second()
    if result.performance > executed_rate * (1 + ctx.noise_slack):
        yield (
            "useful instructions/s exceed the executed instruction rate",
            {"performance": result.performance,
             "executed_rate": executed_rate,
             "noise_slack": ctx.noise_slack},
        )


@invariant("smtsm_well_formed", "run",
           "the SMTsm evaluates with factors in their domains")
def _smtsm_well_formed(result: RunResult, ctx: InvariantContext):
    metric = smtsm_from_run(result)
    if not (0.0 <= metric.dispatch_held <= 1.0 + EXACT_TOL):
        yield ("SMTsm dispatch-held factor out of [0, 1]",
               {"dispatch_held": metric.dispatch_held})
    if metric.scalability_ratio < 1.0 - EXACT_TOL:
        yield ("SMTsm scalability ratio below 1 (CPU time beyond wall)",
               {"scalability_ratio": metric.scalability_ratio})
    product = (metric.mix_deviation * metric.dispatch_held
               * metric.scalability_ratio)
    if abs(metric.value - product) > EXACT_TOL * max(product, 1.0):
        yield ("SMTsm value is not the product of its factors",
               {"value": metric.value, "factor_product": product})


@invariant("smtsm_monotone_in_dispheld", "run",
           "at fixed mix and times, SMTsm grows with the dispatch-held counter")
def _smtsm_monotone(result: RunResult, ctx: InvariantContext):
    sample = result.counter_sample()
    held = sample.events.get("DISP_HELD_RES", 0.0)
    if held <= 0:
        return
    values = [
        smtsm(sample.with_events({"DISP_HELD_RES": held * factor})).value
        for factor in (0.25, 0.5, 1.0)
    ]
    for lo, hi in zip(values, values[1:]):
        if lo > hi * (1 + EXACT_TOL):
            yield (
                "SMTsm decreased when the dispatch-held counter grew",
                {"values_at_0.25_0.5_1.0": tuple(values)},
            )
            return


# -- chip-scope laws -----------------------------------------------------

@invariant("port_utilization_bounded", "chip",
           "every issue port runs at <= 100% of its capacity")
def _port_utilization(solution: ChipSolution, ctx: InvariantContext):
    for i, out in enumerate(solution.core_outputs):
        util = np.asarray(out.port_utilization)
        if (util < -EXACT_TOL).any() or (util > 1 + EXACT_TOL).any():
            yield (
                f"core {i} port utilization out of [0, 1]",
                {"min": float(util.min()), "max": float(util.max())},
            )


@invariant("port_scale_bounded", "chip",
           "the structural throttle lambda lies in (0, 1]")
def _port_scale(solution: ChipSolution, ctx: InvariantContext):
    for i, out in enumerate(solution.core_outputs):
        if not (0.0 < out.port_scale <= 1.0 + EXACT_TOL):
            yield (f"core {i} port_scale out of (0, 1]",
                   {"port_scale": out.port_scale})


@invariant("dispatch_width_respected", "chip",
           "core IPC never exceeds the SMT mode's dispatch width")
def _dispatch_width(solution: ChipSolution, ctx: InvariantContext,
                    arch=None):
    if arch is None:
        return
    for i, (occ, out) in enumerate(
            zip(solution.core_occupancy, solution.core_outputs)):
        mode = effective_smt_mode(arch, occ)
        width = arch.partition.core_dispatch_width(mode)
        if out.core_ipc > width * (1 + EXACT_TOL):
            yield (
                f"core {i} IPC exceeds SMT{mode} dispatch width",
                {"core_ipc": out.core_ipc, "dispatch_width": width},
            )


@invariant("stall_fractions_bounded", "chip",
           "stall fractions are in [0, 1] and long stalls are a subset")
def _stall_fractions(solution: ChipSolution, ctx: InvariantContext):
    for i, out in enumerate(solution.core_outputs):
        stall = np.asarray(out.stall_fraction)
        long_stall = np.asarray(out.long_stall_fraction)
        if (stall < -EXACT_TOL).any() or (stall > 1 + EXACT_TOL).any():
            yield (f"core {i} stall fraction out of [0, 1]",
                   {"max": float(stall.max())})
        if (long_stall > stall + EXACT_TOL).any():
            yield (
                f"core {i} long-stall fraction exceeds total stall fraction",
                {"long_max": float(long_stall.max()),
                 "stall_max": float(stall.max())},
            )
        if not (0.0 <= out.dispatch_held_fraction <= 1.0 + EXACT_TOL):
            yield (f"core {i} dispatch-held fraction out of [0, 1]",
                   {"dispatch_held_fraction": out.dispatch_held_fraction})


@invariant("hit_rates_in_unit_interval", "chip",
           "effective miss rates are nonnegative and monotone: every "
           "level's hit rate lands in [0, 1]")
def _hit_rates(solution: ChipSolution, ctx: InvariantContext):
    for i, out in enumerate(solution.core_outputs):
        for t, rates in enumerate(out.miss_rates):
            ordered = (rates.l1_mpki >= rates.l2_mpki - EXACT_TOL
                       and rates.l2_mpki >= rates.l3_mpki - EXACT_TOL
                       and rates.l3_mpki >= -EXACT_TOL)
            if not ordered:
                yield (
                    f"core {i} thread {t} effective miss rates not monotone",
                    {"l1_mpki": rates.l1_mpki, "l2_mpki": rates.l2_mpki,
                     "l3_mpki": rates.l3_mpki},
                )


@invariant("memory_state_bounded", "chip",
           "memory latency multiplier and utilization stay in their domains")
def _memory_state(solution: ChipSolution, ctx: InvariantContext):
    if not (1.0 - EXACT_TOL <= solution.mem_latency_mult
            <= MAX_LATENCY_MULT + EXACT_TOL):
        yield ("memory latency multiplier out of [1, max]",
               {"mem_latency_mult": solution.mem_latency_mult,
                "max": MAX_LATENCY_MULT})
    if not (0.0 <= solution.mem_utilization <= 1.0 + EXACT_TOL):
        yield ("memory utilization out of [0, 1]",
               {"mem_utilization": solution.mem_utilization})
    if solution.traffic_gbps < -EXACT_TOL:
        yield ("negative DRAM traffic", {"traffic_gbps": solution.traffic_gbps})


# -- pillar runner -------------------------------------------------------

class _Tally:
    """Mutable accumulator shared by the pillar evaluation helpers."""

    def __init__(self):
        self.violations: List[Violation] = []
        self.checks_run = 0
        self.subjects = 0

    def check(self, inv: Invariant, subject: str, problems) -> None:
        self.checks_run += 1
        for message, details in problems:
            self.violations.append(Violation(
                pillar="invariants", check=inv.name,
                subject=subject, message=message, details=details,
            ))


def _run_scope_over(catalog_runs: CatalogRuns, ctx: InvariantContext,
                    tally: _Tally) -> None:
    run_invs = invariants_for("run")
    for name, by_level in catalog_runs.runs.items():
        for level, result in sorted(by_level.items()):
            subject = (f"{name}@SMT{level}"
                       f" [{result.arch.name} x{result.n_chips}]")
            tally.subjects += 1
            for inv in run_invs:
                tally.check(inv, subject, inv.fn(result, ctx))


def _chip_solution_checks(solution: ChipSolution, arch, subject: str,
                          ctx: InvariantContext, tally: _Tally) -> None:
    tally.subjects += 1
    for inv in invariants_for("chip"):
        if inv.name == "dispatch_width_respected":
            problems = inv.fn(solution, ctx, arch=arch)
        else:
            problems = inv.fn(solution, ctx)
        tally.check(inv, subject, problems)


def _chip_scope_over(catalog_runs: CatalogRuns, ctx: InvariantContext,
                     chip_samples: int, tally: _Tally) -> int:
    """Re-solve a noise-free scenario sample; returns how many workloads."""
    from repro.workloads.catalog import all_workloads

    system = catalog_runs.system
    specs = all_workloads()
    names = [n for n in catalog_runs.names() if n in specs]
    step = max(1, len(names) // max(chip_samples, 1))
    sampled = names[::step][:chip_samples]
    for name in sampled:
        stream = specs[name].stream
        for level in catalog_runs.levels():
            placement = place_threads(system, level, system.contexts_at(level))
            solution = solve_chip(placement, stream)
            subject = (f"chip:{name}@SMT{level}"
                       f" [{system.arch.name} x{system.n_chips}]")
            _chip_solution_checks(solution, system.arch, subject, ctx, tally)
    return len(sampled)


def check_catalog_invariants(
    catalog_runs: CatalogRuns,
    *,
    noise_rel: float = 0.01,
    chip_samples: int = 4,
) -> PillarReport:
    """Evaluate every registered invariant over a catalog's runs.

    Run-scope laws see every :class:`RunResult` in the catalog.
    Chip-scope laws need solver internals a ``RunResult`` does not
    retain (per-port utilization, throttle, effective miss rates), so
    ``chip_samples`` scenarios are re-solved noise-free via
    :func:`repro.sim.chip.solve_chip` — sampled evenly across the
    catalog's workloads at every SMT level.
    """
    ctx = InvariantContext(noise_rel=noise_rel)
    tally = _Tally()
    tracer = get_tracer()

    with tracer.span("check.invariants", runs=sum(
            len(by_level) for by_level in catalog_runs.runs.values())):
        _run_scope_over(catalog_runs, ctx, tally)
        sampled = _chip_scope_over(catalog_runs, ctx, chip_samples, tally)

    tracer.add("check.invariant_checks", tally.checks_run)
    tracer.add("check.invariant_violations", len(tally.violations))
    return PillarReport(
        pillar="invariants",
        checks_run=tally.checks_run,
        subjects=tally.subjects,
        violations=tuple(tally.violations),
        stats={"registered": len(REGISTRY), "chip_samples": sampled},
    )


#: Reduced workload slice for the per-architecture coverage sweep: the
#: compute-bound, graph/memory, lock-heavy, and contention extremes.
COVERAGE_WORKLOADS: Tuple[str, ...] = (
    "EP", "SSCA2", "Fluidanimate", "SPECjbb_contention",
)


def check_registry_coverage(
    *,
    seed: int = 11,
    noise_rel: float = 0.01,
    chip_samples: int = 2,
    exercised: Iterable[str] = (),
) -> PillarReport:
    """Exercise every *registered* architecture through the invariant laws.

    The main invariant pillar sweeps one architecture's full catalog;
    this sweep guarantees no registered architecture escapes scrutiny: a
    reduced catalog (:data:`COVERAGE_WORKLOADS`, every SMT level) runs
    on each architecture from :func:`repro.arch.list_architectures` not
    already ``exercised``, all run- and chip-scope laws are evaluated,
    and every registered :class:`~repro.arch.hetero.HeteroChip` has its
    per-cluster fixed points re-checked via
    :func:`repro.sim.hetero.solve_hetero_chip`.

    An architecture whose builder raises, whose sweep fails, or a hetero
    chip whose clusters are missing from the registry becomes an
    ``arch_coverage`` violation — so a newly registered arch that cannot
    be exercised fails ``repro check --all``.  Emits the
    ``check.arch_coverage`` counter (architectures covered).
    """
    from repro.arch import get_architecture, list_architectures
    from repro.arch.hetero import get_hetero, list_hetero
    from repro.experiments.runner import run_catalog
    from repro.sim.hetero import solve_hetero_chip
    from repro.workloads.catalog import all_workloads

    ctx = InvariantContext(noise_rel=noise_rel)
    tally = _Tally()
    tracer = get_tracer()
    already = {name.lower() for name in exercised}
    covered: List[str] = []
    specs = all_workloads()
    catalog = {n: specs[n] for n in COVERAGE_WORKLOADS}

    with tracer.span("check.arch_coverage",
                     registered=len(list_architectures())):
        for arch_name in list_architectures():
            if arch_name in already:
                covered.append(arch_name)
                continue
            try:
                get_architecture(arch_name)
                runs = run_catalog(
                    arch_name, catalog, seed=seed, strategy="columnar",
                )
            except Exception as exc:  # noqa: BLE001 — contain, report
                tally.checks_run += 1
                tally.violations.append(Violation(
                    pillar="invariants", check="arch_coverage",
                    subject=f"arch:{arch_name}",
                    message=f"registered architecture cannot be exercised: {exc}",
                    details={},
                ))
                continue
            if runs.failures:
                tally.checks_run += 1
                tally.violations.append(Violation(
                    pillar="invariants", check="arch_coverage",
                    subject=f"arch:{arch_name}",
                    message=f"coverage sweep had failures: {dict(runs.failures)}",
                    details={},
                ))
            _run_scope_over(runs, ctx, tally)
            _chip_scope_over(runs, ctx, chip_samples, tally)
            covered.append(arch_name)

        # Hetero chips: clusters must be registry-reachable, and the
        # per-cluster fixed points must obey the chip-scope laws too.
        registered = set(list_architectures())
        for chip_name in list_hetero():
            chip = get_hetero(chip_name)
            for cluster in chip.clusters:
                tally.checks_run += 1
                if f"{chip_name}.{cluster.name}" not in registered:
                    tally.violations.append(Violation(
                        pillar="invariants", check="arch_coverage",
                        subject=f"hetero:{chip_name}",
                        message=(
                            f"cluster {cluster.name!r} is not registered as "
                            f"{chip_name}.{cluster.name!r} — unreachable by "
                            "CLI/fleet/coverage"
                        ),
                        details={},
                    ))
            for wl_name in COVERAGE_WORKLOADS[:chip_samples]:
                solutions = solve_hetero_chip(chip, specs[wl_name].stream)
                for cluster_name, solution in solutions.items():
                    subject = (f"hetero:{chip_name}.{cluster_name}"
                               f" chip:{wl_name}")
                    arch = chip.cluster(cluster_name).arch
                    _chip_solution_checks(solution, arch, subject, ctx, tally)

    tracer.add("check.arch_coverage", len(covered))
    tracer.add("check.invariant_checks", tally.checks_run)
    tracer.add("check.invariant_violations", len(tally.violations))
    return PillarReport(
        pillar="invariants",
        checks_run=tally.checks_run,
        subjects=tally.subjects,
        violations=tuple(tally.violations),
        stats={
            "covered_archs": len(covered),
            "hetero_chips": len(list_hetero()),
        },
    )
