"""Orchestration: run selected pillars, aggregate one :class:`CheckReport`.

The pillars are independent; this module owns their ordering, their
shared configuration (seed, architecture, tolerances), the telemetry
setup, and the crash containment — a pillar that *itself* dies is
reported as a violation of that pillar, never as a traceback that
masks the other pillars' results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence

from repro.check import differential, fuzz, goldens, invariants
from repro.check.report import (
    PILLARS,
    CheckReport,
    PillarReport,
    Violation,
    merge_pillar_reports,
)
from repro.obs import configure, get_tracer

DEFAULT_SEED = 11


@dataclass(frozen=True)
class CheckOptions:
    """Everything ``repro check`` can be tuned with."""

    arch: str = "p7"
    seed: int = DEFAULT_SEED
    noise_rel: float = 0.01             # invariants: counter jitter level
    chip_samples: int = 4               # invariants: re-solved scenarios
    diff_rel_tol: float = differential.REL_TOL
    include_parallel: bool = True       # differential: fork-pool path
    figures: Optional[Sequence[str]] = None   # goldens: subset (None = all)
    goldens_directory: Optional[Path] = None
    fuzz_cases: int = 500
    fuzz_seed: int = fuzz.DEFAULT_SEED
    extra: dict = field(default_factory=dict)  # forward-compat knobs


def _crashed(pillar: str, exc: BaseException) -> PillarReport:
    return PillarReport(
        pillar=pillar, checks_run=0, subjects=0,
        violations=(Violation(
            pillar=pillar, check="pillar_crashed", subject=pillar,
            message=f"the pillar itself raised {type(exc).__name__}: {exc}",
        ),),
    )


def _run_invariants(options: CheckOptions) -> PillarReport:
    from repro.experiments.runner import run_catalog, resolve_system

    runs = run_catalog(options.arch, seed=options.seed)
    main = invariants.check_catalog_invariants(
        runs, noise_rel=options.noise_rel, chip_samples=options.chip_samples,
    )
    # Cross-architecture coverage: every *registered* architecture (and
    # every hetero chip's clusters) must pass the same laws; the main
    # sweep's architecture is counted as exercised without re-running.
    coverage = invariants.check_registry_coverage(
        seed=options.seed, noise_rel=options.noise_rel,
        chip_samples=min(options.chip_samples, 2),
        exercised=[resolve_system(options.arch).arch.name.lower(),
                   options.arch.lower()],
    )
    return merge_pillar_reports(main, coverage)


def _run_differential(options: CheckOptions) -> PillarReport:
    main = differential.run_differential_checks(
        arch=options.arch, seed=options.seed,
        rel_tol=options.diff_rel_tol,
        include_parallel=options.include_parallel,
    )
    cross = differential.run_cross_arch_differential(
        seed=options.seed, rel_tol=options.diff_rel_tol,
    )
    return merge_pillar_reports(main, cross)


def _run_goldens(options: CheckOptions) -> PillarReport:
    return goldens.run_golden_checks(
        options.figures, seed=options.seed,
        directory=options.goldens_directory,
    )


def _run_fuzz(options: CheckOptions) -> PillarReport:
    return fuzz.run_fuzz_checks(
        cases=options.fuzz_cases, seed=options.fuzz_seed,
    )


_RUNNERS = {
    "invariants": _run_invariants,
    "differential": _run_differential,
    "goldens": _run_goldens,
    "fuzz": _run_fuzz,
}


def run_check(
    pillars: Optional[Sequence[str]] = None,
    options: Optional[CheckOptions] = None,
) -> CheckReport:
    """Run the selected pillars (default: all four) and aggregate.

    Pillars always execute in :data:`~repro.check.report.PILLARS`
    order, whatever order they were requested in.
    """
    options = options or CheckOptions()
    selected = list(pillars) if pillars is not None else list(PILLARS)
    unknown = [p for p in selected if p not in PILLARS]
    if unknown:
        raise ValueError(f"unknown pillar(s) {unknown}; known: {list(PILLARS)}")

    tracer = get_tracer()
    if not tracer.enabled:
        tracer = configure(enabled=True)    # in-process counters only

    reports: List[PillarReport] = []
    with tracer.span("check.run", pillars=",".join(selected)):
        for pillar in PILLARS:
            if pillar not in selected:
                continue
            try:
                reports.append(_RUNNERS[pillar](options))
            except Exception as exc:
                reports.append(_crashed(pillar, exc))
    return CheckReport(pillars=tuple(reports))
