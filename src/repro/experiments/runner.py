"""Shared measurement protocol for the evaluation experiments.

"In all of the experiments conducted, the number of software threads
used is chosen to be the same as the number of available hardware
threads/contexts" (§IV) — so a POWER7 chip runs 8/16/32 threads at
SMT1/2/4, and speedups compare completion of the *same work*.

:func:`run_catalog` executes a benchmark set once per SMT level and
caches the runs; every scatter figure (6, 8-15) is then a cheap
projection: pick the measurement level for the metric and a level pair
for the speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.success import SuccessSummary, success_summary
from repro.core.metric import SmtsmResult, smtsm_from_run
from repro.obs import get_tracer
from repro.core.predictor import Observation, SmtPredictor
from repro.sim.engine import DEFAULT_WORK, RunSpec, simulate_many, simulate_run
from repro.sim.results import RunResult, speedup
from repro.sim.runcache import RunCache, cache_enabled_by_default
from repro.simos.system import SystemSpec
from repro.util.tables import format_table
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "DEFAULT_WORK",  # re-exported; the engine owns the single definition
    "CatalogRuns",
    "RetryPolicy",
    "run_catalog",
    "run_catalog_batched",
    "ScatterPoint",
    "ScatterResult",
    "scatter_from_runs",
]


@dataclass(frozen=True)
class CatalogRuns:
    """All runs of one benchmark set on one system.

    ``failures`` records runs the sweep could not produce (keyed
    ``"name@SMT<level>"`` with the error text); a partially-failed
    sweep reports them here instead of aborting, and downstream
    projections skip the incomplete workloads.
    """

    system: SystemSpec
    runs: Mapping[str, Mapping[int, RunResult]]
    seed: int
    failures: Mapping[str, str] = field(default_factory=dict)

    def levels(self) -> Tuple[int, ...]:
        any_runs = next(iter(self.runs.values()))
        return tuple(sorted(any_runs))

    def names(self) -> Tuple[str, ...]:
        return tuple(self.runs)

    def complete_names(self, levels: Sequence[int]) -> Tuple[str, ...]:
        """Workloads that have a run at every requested level."""
        return tuple(
            name for name, by_level in self.runs.items()
            if all(level in by_level for level in levels)
        )


def _catalog_specs(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Sequence[int],
    seed: int,
    work: float,
) -> List[Tuple[str, int, RunSpec]]:
    for level in levels:
        system.arch.validate_smt_level(level)
    return [
        (
            name,
            level,
            RunSpec(
                system=system,
                smt_level=level,
                stream=spec.stream,
                sync=spec.sync,
                useful_instructions=work,
                seed=seed,
            ),
        )
        for name, spec in catalog.items()
        for level in levels
    ]


def run_catalog(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Optional[Sequence[int]] = None,
    *,
    seed: int = 11,
    work: float = DEFAULT_WORK,
) -> CatalogRuns:
    """Run every workload at every requested SMT level (scalar engine).

    Telemetry: the sweep is a ``runner.run_catalog`` span with one
    nested ``run`` span per (workload, level) — the per-run wall times
    behind ``repro stats``' slowest-runs table.
    """
    if levels is None:
        levels = system.arch.smt_levels
    keyed = _catalog_specs(system, catalog, levels, seed, work)
    all_runs: Dict[str, Dict[int, RunResult]] = {}
    tracer = get_tracer()
    with tracer.span(
        "runner.run_catalog",
        system=f"{system.arch.name} x{system.n_chips}",
        runs=len(keyed),
    ):
        for name, level, spec in keyed:
            with tracer.span("run", workload=name, level=level):
                all_runs.setdefault(name, {})[level] = simulate_run(spec)
    return CatalogRuns(system=system, runs=all_runs, seed=seed)


def _simulate_worker(spec: RunSpec) -> RunResult:
    return simulate_run(spec)


@dataclass(frozen=True)
class RetryPolicy:
    """Recovery knobs for the multiprocessing fan-out.

    ``task_timeout_s`` bounds one attempt of one task; a worker that
    hangs (or dies without reporting — a hard crash leaves its task
    forever pending) is detected through it.  Failed attempts are
    retried up to ``max_retries`` times with exponential backoff
    (``backoff_s * backoff_mult**attempt``); a task that exhausts its
    retries falls back to authoritative in-process execution, so a
    flaky pool degrades the sweep's speed, never its result.
    """

    task_timeout_s: float = 120.0
    max_retries: int = 2
    backoff_s: float = 0.05
    backoff_mult: float = 2.0

    def __post_init__(self):
        if self.task_timeout_s <= 0:
            raise ValueError(f"task_timeout_s must be > 0, got {self.task_timeout_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")
        if self.backoff_mult < 1.0:
            raise ValueError(f"backoff_mult must be >= 1, got {self.backoff_mult}")

    def backoff_for(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (1-based)."""
        return self.backoff_s * self.backoff_mult ** (attempt - 1)


def _resilient_worker(index: int, spec: RunSpec, attempt: int, fault_hook) -> RunResult:
    """Worker entry point; ``fault_hook(index, spec, attempt)`` (when
    given) runs first so tests can crash or stall chosen tasks."""
    if fault_hook is not None:
        fault_hook(index, spec, attempt)
    return simulate_run(spec)


def _simulate_parallel(
    specs: List[RunSpec],
    jobs: int,
    *,
    policy: Optional[RetryPolicy] = None,
    fault_hook: Optional[Callable[[int, RunSpec, int], None]] = None,
) -> List[RunResult]:
    """Multiprocessing fallback for engines that cannot batch — resilient.

    The vectorized batch path only exists for the fast analytic engine;
    detailed per-run simulation (e.g. the cycle engine) parallelizes
    across processes instead.  Worker failures never lose a run:

    * a task whose attempt raises is retried (bounded, with backoff);
    * a task whose worker hangs or dies silently trips the per-task
      timeout and is retried the same way;
    * a task that exhausts its retries is recomputed in-process;
    * if no pool can be created at all (restricted environments), the
      whole list runs in-process.

    Every recovery flows through ``runner.*`` obs counters
    (``task_errors``, ``task_timeouts``, ``task_retries``,
    ``recovered_tasks``, ``serial_fallbacks``).  ``fault_hook`` is the
    test seam: a picklable callable (e.g.
    :class:`repro.faults.WorkerFaultPlan`) invoked inside the worker
    before simulation.
    """
    import multiprocessing as mp

    if policy is None:
        policy = RetryPolicy()
    tracer = get_tracer()
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = mp.get_context()
    try:
        pool = ctx.Pool(processes=jobs)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        tracer.add("runner.serial_fallbacks", len(specs))
        return [simulate_run(spec) for spec in specs]

    results: List[Optional[RunResult]] = [None] * len(specs)
    try:
        pending = {
            i: pool.apply_async(_resilient_worker, (i, spec, 0, fault_hook))
            for i, spec in enumerate(specs)
        }
        for i, spec in enumerate(specs):
            attempt = 0
            while True:
                try:
                    results[i] = pending[i].get(policy.task_timeout_s)
                    break
                except mp.TimeoutError:
                    tracer.add("runner.task_timeouts")
                except Exception:
                    tracer.add("runner.task_errors")
                attempt += 1
                if attempt > policy.max_retries:
                    # Authoritative fallback: the sweep's correctness
                    # never depends on the pool behaving.
                    results[i] = simulate_run(spec)
                    tracer.add("runner.serial_fallbacks")
                    break
                delay = policy.backoff_for(attempt)
                if delay > 0:
                    time.sleep(delay)
                tracer.add("runner.task_retries")
                pending[i] = pool.apply_async(
                    _resilient_worker, (i, spec, attempt, fault_hook)
                )
            if attempt > 0:
                tracer.add("runner.recovered_tasks")
    finally:
        # terminate(), not close(): hung or injected-fault workers must
        # not block sweep completion.
        pool.terminate()
        pool.join()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_catalog_batched(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Optional[Sequence[int]] = None,
    *,
    seed: int = 11,
    work: float = DEFAULT_WORK,
    cache: Optional[RunCache] = None,
    use_cache: Optional[bool] = None,
    jobs: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
    fault_hook: Optional[Callable[[int, RunSpec, int], None]] = None,
) -> CatalogRuns:
    """Run a catalog through the batched sweep engine.

    Produces the same :class:`CatalogRuns` as :func:`run_catalog` (to
    floating-point round-off), but solves every (workload, level) run's
    chip fixed points in vectorized lockstep via
    :func:`repro.sim.engine.simulate_many`.

    ``use_cache``/``cache`` control the persistent run cache: hits skip
    simulation entirely, misses are simulated and stored.  The default
    honours the ``REPRO_RUNCACHE`` environment switch.  ``jobs > 1``
    bypasses batching and fans the runs out over worker processes
    instead — the fallback for engines with no vectorized path;
    ``retry_policy`` / ``fault_hook`` feed the resilient fan-out
    (:class:`RetryPolicy`, :class:`repro.faults.WorkerFaultPlan`).

    A run that fails to simulate does not abort the sweep: the batch
    is salvaged run-by-run, the failure lands in
    :attr:`CatalogRuns.failures` and the ``runner.failed_runs`` obs
    counter, and projections skip the incomplete workload.

    Telemetry: one ``runner.run_catalog_batched`` span covers the sweep
    (attrs: system, run count, cache hits/misses), with nested
    ``cache_lookup`` and ``simulate`` phases; the run cache itself
    accumulates ``runcache.hits`` / ``runcache.misses``.
    """
    if levels is None:
        levels = system.arch.smt_levels
    keyed = _catalog_specs(system, catalog, levels, seed, work)
    specs = [spec for _, _, spec in keyed]
    if use_cache is None:
        use_cache = cache is not None or cache_enabled_by_default()
    if use_cache and cache is None:
        cache = RunCache()

    tracer = get_tracer()
    with tracer.span(
        "runner.run_catalog_batched",
        system=f"{system.arch.name} x{system.n_chips}",
        runs=len(specs),
        cached=bool(use_cache and cache is not None),
    ) as sweep:
        results: List[Optional[RunResult]] = [None] * len(specs)
        missing: List[int] = []
        if use_cache and cache is not None:
            with tracer.span("cache_lookup", runs=len(specs)):
                for i, spec in enumerate(specs):
                    results[i] = cache.get(spec)
                    if results[i] is None:
                        missing.append(i)
        else:
            missing = list(range(len(specs)))

        sweep.set(cache_hits=len(specs) - len(missing), cache_misses=len(missing))
        failed: Dict[int, str] = {}
        if missing:
            with tracer.span("simulate", runs=len(missing), jobs=jobs or 1):
                todo = [specs[i] for i in missing]
                fresh: Optional[List[Optional[RunResult]]]
                try:
                    if jobs is not None and jobs > 1:
                        fresh = list(_simulate_parallel(
                            todo, jobs, policy=retry_policy, fault_hook=fault_hook,
                        ))
                    else:
                        fresh = list(simulate_many(todo))
                except Exception:
                    # One bad spec must not abort the whole sweep:
                    # salvage run-by-run and report the casualties.
                    fresh = []
                    for idx, spec in zip(missing, todo):
                        try:
                            fresh.append(simulate_run(spec))
                        except Exception as exc:
                            fresh.append(None)
                            failed[idx] = f"{type(exc).__name__}: {exc}"
                            tracer.add("runner.failed_runs")
                for i, result in zip(missing, fresh):
                    results[i] = result
                    if result is not None and use_cache and cache is not None:
                        cache.put(specs[i], result)
        if failed:
            sweep.set(failed_runs=len(failed))

    all_runs: Dict[str, Dict[int, RunResult]] = {}
    failures: Dict[str, str] = {}
    for i, ((name, level, _), result) in enumerate(zip(keyed, results)):
        if result is None:
            failures[f"{name}@SMT{level}"] = failed.get(i, "unknown failure")
            continue
        all_runs.setdefault(name, {})[level] = result
    return CatalogRuns(system=system, runs=all_runs, seed=seed, failures=failures)


@dataclass(frozen=True)
class ScatterPoint:
    """One benchmark in a speedup-vs-metric figure."""

    name: str
    metric: float
    speedup: float
    metric_detail: SmtsmResult

    def observation(self) -> Observation:
        return Observation(name=self.name, metric=self.metric, speedup=self.speedup)


@dataclass(frozen=True)
class ScatterResult:
    """A full speedup-vs-metric experiment (one paper scatter figure)."""

    title: str
    system_name: str
    measure_level: int
    high_level: int
    low_level: int
    points: Tuple[ScatterPoint, ...]
    #: Workloads dropped because their catalog runs were incomplete
    #: (partially-failed sweep) or their metric could not be evaluated.
    skipped: Tuple[str, ...] = ()

    def observations(self) -> List[Observation]:
        return [p.observation() for p in self.points]

    def metrics(self) -> List[float]:
        return [p.metric for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def fit_predictor(self, method: str = "gini") -> SmtPredictor:
        return SmtPredictor.fit(
            self.observations(),
            high_level=self.high_level,
            low_level=self.low_level,
            method=method,
        )

    def success(self, threshold: Optional[float] = None,
                method: str = "gini") -> SuccessSummary:
        """Prediction outcome at a fixed threshold or a fitted one."""
        if threshold is None:
            predictor = self.fit_predictor(method)
        else:
            predictor = SmtPredictor(
                threshold=threshold,
                high_level=self.high_level,
                low_level=self.low_level,
                method="fixed",
            )
        return success_summary(predictor, self.observations())

    def render(self, threshold: Optional[float] = None) -> str:
        """The figure as rows (sorted by metric), plus the summary."""
        rows = [
            [p.name, p.metric, p.speedup, "higher" if p.speedup >= 1 else "lower"]
            for p in sorted(self.points, key=lambda p: p.metric)
        ]
        table = format_table(
            ["benchmark", f"SMTsm@SMT{self.measure_level}",
             f"SMT{self.high_level}/SMT{self.low_level} speedup", "prefers"],
            rows,
            title=self.title,
        )
        summary = self.success(threshold)
        lines = [
            table,
            "",
            f"threshold = {summary.threshold:.4f}  "
            f"success = {summary.n_correct}/{summary.n_total} "
            f"({100 * summary.success_rate:.0f}%)",
        ]
        if summary.misses:
            lines.append(f"mispredicted: {', '.join(summary.misses)}")
        if self.skipped:
            lines.append(f"skipped (incomplete runs): {', '.join(self.skipped)}")
        return "\n".join(lines)


def scatter_from_runs(
    catalog_runs: CatalogRuns,
    *,
    title: str,
    measure_level: int,
    high_level: int,
    low_level: int,
    names: Optional[Iterable[str]] = None,
) -> ScatterResult:
    """Project cached runs into one speedup-vs-metric figure.

    Workloads whose runs are incomplete (a partially-failed sweep left
    holes at one of the requested levels) or whose metric cannot be
    evaluated are *skipped and reported* — listed in
    :attr:`ScatterResult.skipped` and counted in the
    ``runner.scatter_skipped`` obs counter — rather than aborting the
    figure with a bare ``KeyError``.  Asking for a name the catalog
    never contained is still a programming error and raises.
    """
    if high_level <= low_level:
        raise ValueError(f"high_level {high_level} must exceed low_level {low_level}")
    tracer = get_tracer()
    points: List[ScatterPoint] = []
    skipped: List[str] = []
    if names is not None:
        selected = list(names)
    else:
        # A workload every one of whose runs failed is absent from
        # ``runs`` entirely; surface it in the skip report rather than
        # letting it vanish from the figure silently.
        all_failed = {
            key.split("@SMT", 1)[0] for key in catalog_runs.failures
        } - set(catalog_runs.runs)
        selected = list(catalog_runs.runs) + sorted(all_failed)
    for name in selected:
        try:
            runs = catalog_runs.runs[name]
        except KeyError:
            if names is not None and not any(
                key.startswith(f"{name}@SMT") for key in catalog_runs.failures
            ):
                raise KeyError(f"workload {name!r} not in catalog runs") from None
            skipped.append(name)
            tracer.add("runner.scatter_skipped")
            continue
        try:
            metric = smtsm_from_run(runs[measure_level])
            point = ScatterPoint(
                name=name,
                metric=metric.value,
                speedup=speedup(runs[high_level], runs[low_level]),
                metric_detail=metric,
            )
        except (KeyError, ValueError):
            skipped.append(name)
            tracer.add("runner.scatter_skipped")
            continue
        points.append(point)
    if not points:
        raise ValueError(
            f"no complete workloads to plot (skipped: {', '.join(skipped) or 'none'})"
        )
    return ScatterResult(
        title=title,
        system_name=f"{catalog_runs.system.arch.name} x{catalog_runs.system.n_chips}",
        measure_level=measure_level,
        high_level=high_level,
        low_level=low_level,
        points=tuple(points),
        skipped=tuple(skipped),
    )
