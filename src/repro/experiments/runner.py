"""Shared measurement protocol for the evaluation experiments.

"In all of the experiments conducted, the number of software threads
used is chosen to be the same as the number of available hardware
threads/contexts" (§IV) — so a POWER7 chip runs 8/16/32 threads at
SMT1/2/4, and speedups compare completion of the *same work*.

:func:`run_catalog` executes a benchmark set once per SMT level and
caches the runs; every scatter figure (6, 8-15) is then a cheap
projection: pick the measurement level for the metric and a level pair
for the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.success import SuccessSummary, success_summary
from repro.core.metric import SmtsmResult, smtsm_from_run
from repro.core.predictor import Observation, SmtPredictor
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.results import RunResult, speedup
from repro.simos.system import SystemSpec
from repro.util.tables import format_table
from repro.workloads.spec import WorkloadSpec

#: Default per-run useful work; large enough to make noise marginal.
DEFAULT_WORK = 2e10


@dataclass(frozen=True)
class CatalogRuns:
    """All runs of one benchmark set on one system."""

    system: SystemSpec
    runs: Mapping[str, Mapping[int, RunResult]]
    seed: int

    def levels(self) -> Tuple[int, ...]:
        any_runs = next(iter(self.runs.values()))
        return tuple(sorted(any_runs))

    def names(self) -> Tuple[str, ...]:
        return tuple(self.runs)


def run_catalog(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Optional[Sequence[int]] = None,
    *,
    seed: int = 11,
    work: float = DEFAULT_WORK,
) -> CatalogRuns:
    """Run every workload at every requested SMT level."""
    if levels is None:
        levels = system.arch.smt_levels
    for level in levels:
        system.arch.validate_smt_level(level)
    all_runs: Dict[str, Dict[int, RunResult]] = {}
    for name, spec in catalog.items():
        all_runs[name] = {
            level: simulate_run(
                RunSpec(
                    system=system,
                    smt_level=level,
                    stream=spec.stream,
                    sync=spec.sync,
                    useful_instructions=work,
                    seed=seed,
                )
            )
            for level in levels
        }
    return CatalogRuns(system=system, runs=all_runs, seed=seed)


@dataclass(frozen=True)
class ScatterPoint:
    """One benchmark in a speedup-vs-metric figure."""

    name: str
    metric: float
    speedup: float
    metric_detail: SmtsmResult

    def observation(self) -> Observation:
        return Observation(name=self.name, metric=self.metric, speedup=self.speedup)


@dataclass(frozen=True)
class ScatterResult:
    """A full speedup-vs-metric experiment (one paper scatter figure)."""

    title: str
    system_name: str
    measure_level: int
    high_level: int
    low_level: int
    points: Tuple[ScatterPoint, ...]

    def observations(self) -> List[Observation]:
        return [p.observation() for p in self.points]

    def metrics(self) -> List[float]:
        return [p.metric for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def fit_predictor(self, method: str = "gini") -> SmtPredictor:
        return SmtPredictor.fit(
            self.observations(),
            high_level=self.high_level,
            low_level=self.low_level,
            method=method,
        )

    def success(self, threshold: Optional[float] = None,
                method: str = "gini") -> SuccessSummary:
        """Prediction outcome at a fixed threshold or a fitted one."""
        if threshold is None:
            predictor = self.fit_predictor(method)
        else:
            predictor = SmtPredictor(
                threshold=threshold,
                high_level=self.high_level,
                low_level=self.low_level,
                method="fixed",
            )
        return success_summary(predictor, self.observations())

    def render(self, threshold: Optional[float] = None) -> str:
        """The figure as rows (sorted by metric), plus the summary."""
        rows = [
            [p.name, p.metric, p.speedup, "higher" if p.speedup >= 1 else "lower"]
            for p in sorted(self.points, key=lambda p: p.metric)
        ]
        table = format_table(
            ["benchmark", f"SMTsm@SMT{self.measure_level}",
             f"SMT{self.high_level}/SMT{self.low_level} speedup", "prefers"],
            rows,
            title=self.title,
        )
        summary = self.success(threshold)
        lines = [
            table,
            "",
            f"threshold = {summary.threshold:.4f}  "
            f"success = {summary.n_correct}/{summary.n_total} "
            f"({100 * summary.success_rate:.0f}%)",
        ]
        if summary.misses:
            lines.append(f"mispredicted: {', '.join(summary.misses)}")
        return "\n".join(lines)


def scatter_from_runs(
    catalog_runs: CatalogRuns,
    *,
    title: str,
    measure_level: int,
    high_level: int,
    low_level: int,
    names: Optional[Iterable[str]] = None,
) -> ScatterResult:
    """Project cached runs into one speedup-vs-metric figure."""
    if high_level <= low_level:
        raise ValueError(f"high_level {high_level} must exceed low_level {low_level}")
    points: List[ScatterPoint] = []
    selected = list(names) if names is not None else list(catalog_runs.runs)
    for name in selected:
        try:
            runs = catalog_runs.runs[name]
        except KeyError:
            raise KeyError(f"workload {name!r} not in catalog runs") from None
        metric = smtsm_from_run(runs[measure_level])
        points.append(
            ScatterPoint(
                name=name,
                metric=metric.value,
                speedup=speedup(runs[high_level], runs[low_level]),
                metric_detail=metric,
            )
        )
    return ScatterResult(
        title=title,
        system_name=f"{catalog_runs.system.arch.name} x{catalog_runs.system.n_chips}",
        measure_level=measure_level,
        high_level=high_level,
        low_level=low_level,
        points=tuple(points),
    )
