"""Shared measurement protocol for the evaluation experiments.

"In all of the experiments conducted, the number of software threads
used is chosen to be the same as the number of available hardware
threads/contexts" (§IV) — so a POWER7 chip runs 8/16/32 threads at
SMT1/2/4, and speedups compare completion of the *same work*.

:func:`run_catalog` executes a benchmark set once per SMT level and
caches the runs; every scatter figure (6, 8-15) is then a cheap
projection: pick the measurement level for the metric and a level pair
for the speedup.  One entry point covers every execution strategy:
``run_catalog(arch_or_system, ..., strategy="columnar"|"surrogate"|
"batched"|"serial"|"parallel")`` — the columnar scenario-table engine
(default), the calibrated surrogate fast path, the legacy vectorized
batch engine, the scalar reference loop, or the resilient
multiprocessing fan-out.  The historical names
(``run_catalog_batched``, ``systems.p7_runs``/``nehalem_runs``) survive
as thin :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import os
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.success import SuccessSummary, success_summary
from repro.core.metric import SmtsmResult, smtsm_from_run
from repro.faults.retry import RetryPolicy
from repro.obs import get_tracer
from repro.core.predictor import Observation, SmtPredictor
from repro.sim.engine import DEFAULT_WORK, RunSpec, simulate_many, simulate_run
from repro.sim.results import RunResult, speedup
from repro.sim.runcache import RunCache, cache_enabled_by_default
from repro.simos.system import SystemSpec
from repro.util.enums import ValidatedStrEnum
from repro.util.tables import format_table
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "DEFAULT_WORK",  # re-exported; the engine owns the single definition
    "CatalogRuns",
    "RetryPolicy",  # re-exported; now lives in repro.faults.retry
    "STRATEGIES",
    "Strategy",
    "resolve_system",
    "run_catalog",
    "run_catalog_batched",
    "ScatterPoint",
    "ScatterResult",
    "scatter_from_runs",
]


class Strategy(ValidatedStrEnum):
    """Execution strategies the unified :func:`run_catalog` accepts.

    Members are their literal strings (``Strategy.COLUMNAR ==
    "columnar"``), so both the typed constants and the historical bare
    strings are valid everywhere a ``strategy=`` parameter appears; a
    typo raises a ``ValueError`` listing the valid options.
    """

    COLUMNAR = "columnar"
    SURROGATE = "surrogate"
    BATCHED = "batched"
    SERIAL = "serial"
    PARALLEL = "parallel"


#: The strategies as plain literals (kept for existing callers).
STRATEGIES = Strategy.options()

#: Named systems accepted wherever a :class:`SystemSpec` is expected:
#: alias -> (architecture registry name, chip count).
_SYSTEM_ALIASES = {
    "p7": ("power7", 1),
    "power7": ("power7", 1),
    "p7x2": ("power7", 2),
    "nehalem": ("nehalem", 1),
}


def resolve_system(system: Union[str, SystemSpec],
                   n_chips: Optional[int] = None) -> SystemSpec:
    """Resolve a system alias (``"p7"``/``"p7x2"``/``"nehalem"``/any
    registered architecture name) or pass a :class:`SystemSpec` through.

    ``n_chips`` overrides the alias's default chip count; it is an
    error combined with an explicit :class:`SystemSpec` (the spec
    already fixes the chip count).
    """
    if isinstance(system, SystemSpec):
        if n_chips is not None and n_chips != system.n_chips:
            raise ValueError(
                f"n_chips={n_chips} conflicts with SystemSpec(n_chips="
                f"{system.n_chips}); pass one or the other"
            )
        return system
    from repro.arch import get_architecture

    try:
        arch_name, default_chips = _SYSTEM_ALIASES[system]
    except KeyError:
        arch_name, default_chips = system, 1
    return SystemSpec(get_architecture(arch_name), n_chips or default_chips)


def _default_catalog(system: SystemSpec):
    """The paper's benchmark set and levels for a named system."""
    from repro.workloads.catalog import (
        NEHALEM_SET,
        NEHALEM_SMT1_SET,
        all_workloads,
        armsmt_catalog,
        power7_catalog,
    )

    name = system.arch.name.lower()
    if name.startswith("nehalem"):
        specs = all_workloads()
        names = sorted(set(NEHALEM_SET) | set(NEHALEM_SMT1_SET))
        return {n: specs[n] for n in names}, (1, 2)
    if name.startswith("power7"):
        return power7_catalog(), tuple(system.arch.smt_levels)
    if name.startswith("arm"):
        return armsmt_catalog(), tuple(system.arch.smt_levels)
    # Any other registered architecture (custom or hetero-cluster):
    # workload streams are architecture-independent, so the POWER7
    # 28-benchmark catalog swept over the chip's own SMT levels is a
    # sensible default; pass catalog= to narrow it.
    return power7_catalog(), tuple(system.arch.smt_levels)


@dataclass(frozen=True)
class CatalogRuns:
    """All runs of one benchmark set on one system.

    ``failures`` records runs the sweep could not produce (keyed
    ``"name@SMT<level>"`` with the error text); a partially-failed
    sweep reports them here instead of aborting, and downstream
    projections skip the incomplete workloads.
    """

    system: SystemSpec
    runs: Mapping[str, Mapping[int, RunResult]]
    seed: int
    failures: Mapping[str, str] = field(default_factory=dict)

    def levels(self) -> Tuple[int, ...]:
        any_runs = next(iter(self.runs.values()))
        return tuple(sorted(any_runs))

    def names(self) -> Tuple[str, ...]:
        return tuple(self.runs)

    def complete_names(self, levels: Sequence[int]) -> Tuple[str, ...]:
        """Workloads that have a run at every requested level."""
        return tuple(
            name for name, by_level in self.runs.items()
            if all(level in by_level for level in levels)
        )


def _catalog_specs(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Sequence[int],
    seed: int,
    work: float,
) -> List[Tuple[str, int, RunSpec]]:
    for level in levels:
        system.arch.validate_smt_level(level)
    return [
        (
            name,
            level,
            RunSpec(
                system=system,
                smt_level=level,
                stream=spec.stream,
                sync=spec.sync,
                useful_instructions=work,
                seed=seed,
            ),
        )
        for name, spec in catalog.items()
        for level in levels
    ]


def _simulate_worker(spec: RunSpec) -> RunResult:
    return simulate_run(spec)


def _resilient_worker(index: int, spec: RunSpec, attempt: int, fault_hook) -> RunResult:
    """Worker entry point; ``fault_hook(index, spec, attempt)`` (when
    given) runs first so tests can crash or stall chosen tasks."""
    if fault_hook is not None:
        fault_hook(index, spec, attempt)
    return simulate_run(spec)


def _simulate_parallel(
    specs: List[RunSpec],
    jobs: int,
    *,
    policy: Optional[RetryPolicy] = None,
    fault_hook: Optional[Callable[[int, RunSpec, int], None]] = None,
) -> List[RunResult]:
    """Multiprocessing fallback for engines that cannot batch — resilient.

    The vectorized batch path only exists for the fast analytic engine;
    detailed per-run simulation (e.g. the cycle engine) parallelizes
    across processes instead.  Worker failures never lose a run:

    * a task whose attempt raises is retried (bounded, with backoff);
    * a task whose worker hangs or dies silently trips the per-task
      timeout and is retried the same way;
    * a task that exhausts its retries is recomputed in-process;
    * if no pool can be created at all (restricted environments), the
      whole list runs in-process.

    Every recovery flows through ``runner.*`` obs counters
    (``task_errors``, ``task_timeouts``, ``task_retries``,
    ``recovered_tasks``, ``serial_fallbacks``).  ``fault_hook`` is the
    test seam: a picklable callable (e.g.
    :class:`repro.faults.WorkerFaultPlan`) invoked inside the worker
    before simulation.
    """
    import multiprocessing as mp

    if policy is None:
        policy = RetryPolicy()
    tracer = get_tracer()
    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = mp.get_context()
    try:
        pool = ctx.Pool(processes=jobs)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        tracer.add("runner.serial_fallbacks", len(specs))
        return [simulate_run(spec) for spec in specs]

    results: List[Optional[RunResult]] = [None] * len(specs)
    try:
        pending = {
            i: pool.apply_async(_resilient_worker, (i, spec, 0, fault_hook))
            for i, spec in enumerate(specs)
        }
        for i, spec in enumerate(specs):
            attempt = 0
            while True:
                try:
                    results[i] = pending[i].get(policy.task_timeout_s)
                    break
                except mp.TimeoutError:
                    tracer.add("runner.task_timeouts")
                except Exception:
                    tracer.add("runner.task_errors")
                attempt += 1
                if attempt > policy.max_retries:
                    # Authoritative fallback: the sweep's correctness
                    # never depends on the pool behaving.
                    results[i] = simulate_run(spec)
                    tracer.add("runner.serial_fallbacks")
                    break
                delay = policy.backoff_for(attempt)
                if delay > 0:
                    time.sleep(delay)
                tracer.add("runner.task_retries")
                pending[i] = pool.apply_async(
                    _resilient_worker, (i, spec, attempt, fault_hook)
                )
            if attempt > 0:
                tracer.add("runner.recovered_tasks")
    finally:
        # terminate(), not close(): hung or injected-fault workers must
        # not block sweep completion.
        pool.terminate()
        pool.join()
    assert all(r is not None for r in results)
    return results  # type: ignore[return-value]


def run_catalog(
    system: Union[str, SystemSpec],
    catalog: Optional[Mapping[str, WorkloadSpec]] = None,
    levels: Optional[Sequence[int]] = None,
    *,
    strategy: str = "columnar",
    n_chips: Optional[int] = None,
    seed: int = 11,
    work: float = DEFAULT_WORK,
    cache: Optional[RunCache] = None,
    use_cache: Optional[bool] = None,
    jobs: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
    fault_hook: Optional[Callable[[int, RunSpec, int], None]] = None,
) -> CatalogRuns:
    """Run every workload at every requested SMT level — one entry point.

    ``system`` is a :class:`SystemSpec` or a named alias (``"p7"``,
    ``"p7x2"``, ``"nehalem"``, or any registered architecture name,
    with ``n_chips`` overriding the alias's chip count).  ``catalog``
    defaults to the paper's benchmark set for the system's architecture
    (Table I for POWER7, the Fig. 10/12 set for Nehalem), ``levels`` to
    the architecture's SMT levels.

    ``strategy`` selects how the runs execute; all of them produce the
    same :class:`CatalogRuns` (to floating-point round-off; the
    surrogate to its verified error bound):

    * ``"columnar"`` (default) — the whole sweep lowered into one
      struct-of-arrays :class:`repro.sim.table.ScenarioTable` per
      architecture and solved with whole-table numpy ops
      (:func:`repro.sim.table.simulate_many_columnar`);
    * ``"surrogate"`` — the calibrated fast path
      (:func:`repro.sim.surrogate.simulate_many_surrogate`): verified
      regression warm starts answer confident runs, the rest fall back
      to the columnar solver.  Surrogate-answered results are *not*
      written to the run cache (they carry a bounded approximation,
      the cache stores exact solver output);
    * ``"batched"`` — the previous per-scenario-object lockstep via
      :func:`repro.sim.engine.simulate_many` (kept as the benchmark
      baseline);
    * ``"serial"`` — the scalar reference loop, one
      :func:`simulate_run` per spec with a nested ``run`` span each
      (the source of ``repro stats``' slowest-runs table);
    * ``"parallel"`` — the resilient multiprocessing fan-out over
      ``jobs`` workers (default: the CPU count), governed by
      ``retry_policy`` (:class:`repro.faults.RetryPolicy`) with
      ``fault_hook`` as the test seam
      (:class:`repro.faults.WorkerFaultPlan`).

    ``use_cache``/``cache`` control the persistent run cache: hits skip
    simulation entirely, misses are simulated and stored.  For the
    batched and parallel strategies the default honours the
    ``REPRO_RUNCACHE`` environment switch; the serial strategy is the
    uncached reference path unless a ``cache`` is passed explicitly.

    A run that fails to simulate does not abort the sweep: the batch
    is salvaged run-by-run, the failure lands in
    :attr:`CatalogRuns.failures` and the ``runner.failed_runs`` obs
    counter, and projections skip the incomplete workload.

    Telemetry: one ``runner.run_catalog`` span covers the sweep
    (attrs: system, run count, strategy, cache hits/misses), with
    nested ``cache_lookup`` and ``simulate`` phases; the run cache
    itself accumulates ``runcache.hits`` / ``runcache.misses``.
    """
    strategy = Strategy.parse(strategy).value
    if jobs is not None and strategy != "parallel":
        raise ValueError(f"jobs= only applies to strategy='parallel', not {strategy!r}")
    system = resolve_system(system, n_chips)
    if catalog is None:
        catalog, default_levels = _default_catalog(system)
        if levels is None:
            levels = default_levels
    if levels is None:
        levels = system.arch.smt_levels
    keyed = _catalog_specs(system, catalog, levels, seed, work)
    specs = [spec for _, _, spec in keyed]
    if use_cache is None:
        use_cache = cache is not None or (
            strategy != "serial" and cache_enabled_by_default()
        )
    if use_cache and cache is None:
        cache = RunCache()
    if strategy == "parallel" and jobs is None:
        jobs = os.cpu_count() or 2

    tracer = get_tracer()
    with tracer.span(
        "runner.run_catalog",
        system=f"{system.arch.name} x{system.n_chips}",
        runs=len(specs),
        strategy=strategy,
        cached=bool(use_cache and cache is not None),
    ) as sweep:
        results: List[Optional[RunResult]] = [None] * len(specs)
        missing: List[int] = []
        if use_cache and cache is not None:
            with tracer.span("cache_lookup", runs=len(specs)):
                for i, spec in enumerate(specs):
                    results[i] = cache.get(spec)
                    if results[i] is None:
                        missing.append(i)
        else:
            missing = list(range(len(specs)))

        sweep.set(cache_hits=len(specs) - len(missing), cache_misses=len(missing))
        failed: Dict[int, str] = {}
        if missing:
            with tracer.span("simulate", runs=len(missing), jobs=jobs or 1):
                todo = [specs[i] for i in missing]
                fresh: List[Optional[RunResult]]
                if strategy == "serial":
                    fresh = []
                    for idx, (spec, (name, level, _)) in enumerate(
                        zip(todo, (keyed[i] for i in missing))
                    ):
                        with tracer.span("run", workload=name, level=level):
                            try:
                                fresh.append(simulate_run(spec))
                            except Exception as exc:
                                fresh.append(None)
                                failed[missing[idx]] = f"{type(exc).__name__}: {exc}"
                                tracer.add("runner.failed_runs")
                else:
                    surrogate_hits: List[bool] = [False] * len(todo)
                    try:
                        if strategy == "parallel":
                            fresh = list(_simulate_parallel(
                                todo, jobs, policy=retry_policy,
                                fault_hook=fault_hook,
                            ))
                        elif strategy == "surrogate":
                            from repro.sim.surrogate import simulate_many_surrogate

                            fresh, surrogate_hits = simulate_many_surrogate(todo)
                            fresh = list(fresh)
                        elif strategy == "columnar":
                            from repro.sim.table import simulate_many_columnar

                            fresh = list(simulate_many_columnar(todo))
                        else:
                            fresh = list(simulate_many(todo))
                    except Exception:
                        # One bad spec must not abort the whole sweep:
                        # salvage run-by-run and report the casualties.
                        fresh = []
                        surrogate_hits = [False] * len(todo)
                        for idx, spec in zip(missing, todo):
                            try:
                                fresh.append(simulate_run(spec))
                            except Exception as exc:
                                fresh.append(None)
                                failed[idx] = f"{type(exc).__name__}: {exc}"
                                tracer.add("runner.failed_runs")
                for pos, (i, result) in enumerate(zip(missing, fresh)):
                    results[i] = result
                    if (
                        result is not None
                        and use_cache
                        and cache is not None
                        and not surrogate_hits[pos]
                    ):
                        cache.put(specs[i], result)
        if failed:
            sweep.set(failed_runs=len(failed))

    all_runs: Dict[str, Dict[int, RunResult]] = {}
    failures: Dict[str, str] = {}
    for i, ((name, level, _), result) in enumerate(zip(keyed, results)):
        if result is None:
            failures[f"{name}@SMT{level}"] = failed.get(i, "unknown failure")
            continue
        all_runs.setdefault(name, {})[level] = result
    return CatalogRuns(system=system, runs=all_runs, seed=seed, failures=failures)


def run_catalog_batched(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Optional[Sequence[int]] = None,
    *,
    seed: int = 11,
    work: float = DEFAULT_WORK,
    cache: Optional[RunCache] = None,
    use_cache: Optional[bool] = None,
    jobs: Optional[int] = None,
    retry_policy: Optional[RetryPolicy] = None,
    fault_hook: Optional[Callable[[int, RunSpec, int], None]] = None,
) -> CatalogRuns:
    """Deprecated shim: use :func:`run_catalog` (``strategy="batched"``,
    or ``strategy="parallel"`` with ``jobs=``)."""
    warnings.warn(
        "run_catalog_batched is deprecated; call run_catalog(..., "
        "strategy='batched') (or strategy='parallel' with jobs=) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    strategy = "parallel" if jobs is not None and jobs > 1 else "batched"
    return run_catalog(
        system, catalog, levels,
        strategy=strategy, seed=seed, work=work, cache=cache,
        use_cache=use_cache, jobs=jobs if strategy == "parallel" else None,
        retry_policy=retry_policy, fault_hook=fault_hook,
    )


@dataclass(frozen=True)
class ScatterPoint:
    """One benchmark in a speedup-vs-metric figure."""

    name: str
    metric: float
    speedup: float
    metric_detail: SmtsmResult

    def observation(self) -> Observation:
        return Observation(name=self.name, metric=self.metric, speedup=self.speedup)


@dataclass(frozen=True)
class ScatterResult:
    """A full speedup-vs-metric experiment (one paper scatter figure)."""

    title: str
    system_name: str
    measure_level: int
    high_level: int
    low_level: int
    points: Tuple[ScatterPoint, ...]
    #: Workloads dropped because their catalog runs were incomplete
    #: (partially-failed sweep) or their metric could not be evaluated.
    skipped: Tuple[str, ...] = ()

    def observations(self) -> List[Observation]:
        return [p.observation() for p in self.points]

    def metrics(self) -> List[float]:
        return [p.metric for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def fit_predictor(self, method: str = "gini") -> SmtPredictor:
        return SmtPredictor.fit(
            self.observations(),
            high_level=self.high_level,
            low_level=self.low_level,
            method=method,
        )

    def success(self, threshold: Optional[float] = None,
                method: str = "gini") -> SuccessSummary:
        """Prediction outcome at a fixed threshold or a fitted one."""
        if threshold is None:
            predictor = self.fit_predictor(method)
        else:
            predictor = SmtPredictor(
                threshold=threshold,
                high_level=self.high_level,
                low_level=self.low_level,
                method="fixed",
            )
        return success_summary(predictor, self.observations())

    def render(self, threshold: Optional[float] = None) -> str:
        """The figure as rows (sorted by metric), plus the summary."""
        rows = [
            [p.name, p.metric, p.speedup, "higher" if p.speedup >= 1 else "lower"]
            for p in sorted(self.points, key=lambda p: p.metric)
        ]
        table = format_table(
            ["benchmark", f"SMTsm@SMT{self.measure_level}",
             f"SMT{self.high_level}/SMT{self.low_level} speedup", "prefers"],
            rows,
            title=self.title,
        )
        summary = self.success(threshold)
        lines = [
            table,
            "",
            f"threshold = {summary.threshold:.4f}  "
            f"success = {summary.n_correct}/{summary.n_total} "
            f"({100 * summary.success_rate:.0f}%)",
        ]
        if summary.misses:
            lines.append(f"mispredicted: {', '.join(summary.misses)}")
        if self.skipped:
            lines.append(f"skipped (incomplete runs): {', '.join(self.skipped)}")
        return "\n".join(lines)


def scatter_from_runs(
    catalog_runs: CatalogRuns,
    *,
    title: str,
    measure_level: int,
    high_level: int,
    low_level: int,
    names: Optional[Iterable[str]] = None,
) -> ScatterResult:
    """Project cached runs into one speedup-vs-metric figure.

    Workloads whose runs are incomplete (a partially-failed sweep left
    holes at one of the requested levels) or whose metric cannot be
    evaluated are *skipped and reported* — listed in
    :attr:`ScatterResult.skipped` and counted in the
    ``runner.scatter_skipped`` obs counter — rather than aborting the
    figure with a bare ``KeyError``.  Asking for a name the catalog
    never contained is still a programming error and raises.
    """
    if high_level <= low_level:
        raise ValueError(f"high_level {high_level} must exceed low_level {low_level}")
    tracer = get_tracer()
    points: List[ScatterPoint] = []
    skipped: List[str] = []
    if names is not None:
        selected = list(names)
    else:
        # A workload every one of whose runs failed is absent from
        # ``runs`` entirely; surface it in the skip report rather than
        # letting it vanish from the figure silently.
        all_failed = {
            key.split("@SMT", 1)[0] for key in catalog_runs.failures
        } - set(catalog_runs.runs)
        selected = list(catalog_runs.runs) + sorted(all_failed)
    for name in selected:
        try:
            runs = catalog_runs.runs[name]
        except KeyError:
            if names is not None and not any(
                key.startswith(f"{name}@SMT") for key in catalog_runs.failures
            ):
                raise KeyError(f"workload {name!r} not in catalog runs") from None
            skipped.append(name)
            tracer.add("runner.scatter_skipped")
            continue
        try:
            metric = smtsm_from_run(runs[measure_level])
            point = ScatterPoint(
                name=name,
                metric=metric.value,
                speedup=speedup(runs[high_level], runs[low_level]),
                metric_detail=metric,
            )
        except (KeyError, ValueError):
            skipped.append(name)
            tracer.add("runner.scatter_skipped")
            continue
        points.append(point)
    if not points:
        raise ValueError(
            f"no complete workloads to plot (skipped: {', '.join(skipped) or 'none'})"
        )
    return ScatterResult(
        title=title,
        system_name=f"{catalog_runs.system.arch.name} x{catalog_runs.system.n_chips}",
        measure_level=measure_level,
        high_level=high_level,
        low_level=low_level,
        points=tuple(points),
        skipped=tuple(skipped),
    )
