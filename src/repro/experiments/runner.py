"""Shared measurement protocol for the evaluation experiments.

"In all of the experiments conducted, the number of software threads
used is chosen to be the same as the number of available hardware
threads/contexts" (§IV) — so a POWER7 chip runs 8/16/32 threads at
SMT1/2/4, and speedups compare completion of the *same work*.

:func:`run_catalog` executes a benchmark set once per SMT level and
caches the runs; every scatter figure (6, 8-15) is then a cheap
projection: pick the measurement level for the metric and a level pair
for the speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.success import SuccessSummary, success_summary
from repro.core.metric import SmtsmResult, smtsm_from_run
from repro.obs import get_tracer
from repro.core.predictor import Observation, SmtPredictor
from repro.sim.engine import DEFAULT_WORK, RunSpec, simulate_many, simulate_run
from repro.sim.results import RunResult, speedup
from repro.sim.runcache import RunCache, cache_enabled_by_default
from repro.simos.system import SystemSpec
from repro.util.tables import format_table
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "DEFAULT_WORK",  # re-exported; the engine owns the single definition
    "CatalogRuns",
    "run_catalog",
    "run_catalog_batched",
    "ScatterPoint",
    "ScatterResult",
    "scatter_from_runs",
]


@dataclass(frozen=True)
class CatalogRuns:
    """All runs of one benchmark set on one system."""

    system: SystemSpec
    runs: Mapping[str, Mapping[int, RunResult]]
    seed: int

    def levels(self) -> Tuple[int, ...]:
        any_runs = next(iter(self.runs.values()))
        return tuple(sorted(any_runs))

    def names(self) -> Tuple[str, ...]:
        return tuple(self.runs)


def _catalog_specs(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Sequence[int],
    seed: int,
    work: float,
) -> List[Tuple[str, int, RunSpec]]:
    for level in levels:
        system.arch.validate_smt_level(level)
    return [
        (
            name,
            level,
            RunSpec(
                system=system,
                smt_level=level,
                stream=spec.stream,
                sync=spec.sync,
                useful_instructions=work,
                seed=seed,
            ),
        )
        for name, spec in catalog.items()
        for level in levels
    ]


def run_catalog(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Optional[Sequence[int]] = None,
    *,
    seed: int = 11,
    work: float = DEFAULT_WORK,
) -> CatalogRuns:
    """Run every workload at every requested SMT level (scalar engine).

    Telemetry: the sweep is a ``runner.run_catalog`` span with one
    nested ``run`` span per (workload, level) — the per-run wall times
    behind ``repro stats``' slowest-runs table.
    """
    if levels is None:
        levels = system.arch.smt_levels
    keyed = _catalog_specs(system, catalog, levels, seed, work)
    all_runs: Dict[str, Dict[int, RunResult]] = {}
    tracer = get_tracer()
    with tracer.span(
        "runner.run_catalog",
        system=f"{system.arch.name} x{system.n_chips}",
        runs=len(keyed),
    ):
        for name, level, spec in keyed:
            with tracer.span("run", workload=name, level=level):
                all_runs.setdefault(name, {})[level] = simulate_run(spec)
    return CatalogRuns(system=system, runs=all_runs, seed=seed)


def _simulate_worker(spec: RunSpec) -> RunResult:
    return simulate_run(spec)


def _simulate_parallel(specs: List[RunSpec], jobs: int) -> List[RunResult]:
    """Multiprocessing fallback for engines that cannot batch.

    The vectorized batch path only exists for the fast analytic engine;
    detailed per-run simulation (e.g. the cycle engine) parallelizes
    across processes instead.  Falls back to in-process execution when
    a worker pool cannot be created (restricted environments).
    """
    import multiprocessing as mp

    try:
        ctx = mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        ctx = mp.get_context()
    try:
        with ctx.Pool(processes=jobs) as pool:
            return pool.map(_simulate_worker, specs)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed envs
        return [simulate_run(spec) for spec in specs]


def run_catalog_batched(
    system: SystemSpec,
    catalog: Mapping[str, WorkloadSpec],
    levels: Optional[Sequence[int]] = None,
    *,
    seed: int = 11,
    work: float = DEFAULT_WORK,
    cache: Optional[RunCache] = None,
    use_cache: Optional[bool] = None,
    jobs: Optional[int] = None,
) -> CatalogRuns:
    """Run a catalog through the batched sweep engine.

    Produces the same :class:`CatalogRuns` as :func:`run_catalog` (to
    floating-point round-off), but solves every (workload, level) run's
    chip fixed points in vectorized lockstep via
    :func:`repro.sim.engine.simulate_many`.

    ``use_cache``/``cache`` control the persistent run cache: hits skip
    simulation entirely, misses are simulated and stored.  The default
    honours the ``REPRO_RUNCACHE`` environment switch.  ``jobs > 1``
    bypasses batching and fans the runs out over worker processes
    instead — the fallback for engines with no vectorized path.

    Telemetry: one ``runner.run_catalog_batched`` span covers the sweep
    (attrs: system, run count, cache hits/misses), with nested
    ``cache_lookup`` and ``simulate`` phases; the run cache itself
    accumulates ``runcache.hits`` / ``runcache.misses``.
    """
    if levels is None:
        levels = system.arch.smt_levels
    keyed = _catalog_specs(system, catalog, levels, seed, work)
    specs = [spec for _, _, spec in keyed]
    if use_cache is None:
        use_cache = cache is not None or cache_enabled_by_default()
    if use_cache and cache is None:
        cache = RunCache()

    tracer = get_tracer()
    with tracer.span(
        "runner.run_catalog_batched",
        system=f"{system.arch.name} x{system.n_chips}",
        runs=len(specs),
        cached=bool(use_cache and cache is not None),
    ) as sweep:
        results: List[Optional[RunResult]] = [None] * len(specs)
        missing: List[int] = []
        if use_cache and cache is not None:
            with tracer.span("cache_lookup", runs=len(specs)):
                for i, spec in enumerate(specs):
                    results[i] = cache.get(spec)
                    if results[i] is None:
                        missing.append(i)
        else:
            missing = list(range(len(specs)))

        sweep.set(cache_hits=len(specs) - len(missing), cache_misses=len(missing))
        if missing:
            with tracer.span("simulate", runs=len(missing), jobs=jobs or 1):
                todo = [specs[i] for i in missing]
                if jobs is not None and jobs > 1:
                    fresh = _simulate_parallel(todo, jobs)
                else:
                    fresh = simulate_many(todo)
                for i, result in zip(missing, fresh):
                    results[i] = result
                    if use_cache and cache is not None:
                        cache.put(specs[i], result)

    all_runs: Dict[str, Dict[int, RunResult]] = {}
    for (name, level, _), result in zip(keyed, results):
        assert result is not None
        all_runs.setdefault(name, {})[level] = result
    return CatalogRuns(system=system, runs=all_runs, seed=seed)


@dataclass(frozen=True)
class ScatterPoint:
    """One benchmark in a speedup-vs-metric figure."""

    name: str
    metric: float
    speedup: float
    metric_detail: SmtsmResult

    def observation(self) -> Observation:
        return Observation(name=self.name, metric=self.metric, speedup=self.speedup)


@dataclass(frozen=True)
class ScatterResult:
    """A full speedup-vs-metric experiment (one paper scatter figure)."""

    title: str
    system_name: str
    measure_level: int
    high_level: int
    low_level: int
    points: Tuple[ScatterPoint, ...]

    def observations(self) -> List[Observation]:
        return [p.observation() for p in self.points]

    def metrics(self) -> List[float]:
        return [p.metric for p in self.points]

    def speedups(self) -> List[float]:
        return [p.speedup for p in self.points]

    def fit_predictor(self, method: str = "gini") -> SmtPredictor:
        return SmtPredictor.fit(
            self.observations(),
            high_level=self.high_level,
            low_level=self.low_level,
            method=method,
        )

    def success(self, threshold: Optional[float] = None,
                method: str = "gini") -> SuccessSummary:
        """Prediction outcome at a fixed threshold or a fitted one."""
        if threshold is None:
            predictor = self.fit_predictor(method)
        else:
            predictor = SmtPredictor(
                threshold=threshold,
                high_level=self.high_level,
                low_level=self.low_level,
                method="fixed",
            )
        return success_summary(predictor, self.observations())

    def render(self, threshold: Optional[float] = None) -> str:
        """The figure as rows (sorted by metric), plus the summary."""
        rows = [
            [p.name, p.metric, p.speedup, "higher" if p.speedup >= 1 else "lower"]
            for p in sorted(self.points, key=lambda p: p.metric)
        ]
        table = format_table(
            ["benchmark", f"SMTsm@SMT{self.measure_level}",
             f"SMT{self.high_level}/SMT{self.low_level} speedup", "prefers"],
            rows,
            title=self.title,
        )
        summary = self.success(threshold)
        lines = [
            table,
            "",
            f"threshold = {summary.threshold:.4f}  "
            f"success = {summary.n_correct}/{summary.n_total} "
            f"({100 * summary.success_rate:.0f}%)",
        ]
        if summary.misses:
            lines.append(f"mispredicted: {', '.join(summary.misses)}")
        return "\n".join(lines)


def scatter_from_runs(
    catalog_runs: CatalogRuns,
    *,
    title: str,
    measure_level: int,
    high_level: int,
    low_level: int,
    names: Optional[Iterable[str]] = None,
) -> ScatterResult:
    """Project cached runs into one speedup-vs-metric figure."""
    if high_level <= low_level:
        raise ValueError(f"high_level {high_level} must exceed low_level {low_level}")
    points: List[ScatterPoint] = []
    selected = list(names) if names is not None else list(catalog_runs.runs)
    for name in selected:
        try:
            runs = catalog_runs.runs[name]
        except KeyError:
            raise KeyError(f"workload {name!r} not in catalog runs") from None
        metric = smtsm_from_run(runs[measure_level])
        points.append(
            ScatterPoint(
                name=name,
                metric=metric.value,
                speedup=speedup(runs[high_level], runs[low_level]),
                metric_detail=metric,
            )
        )
    return ScatterResult(
        title=title,
        system_name=f"{catalog_runs.system.arch.name} x{catalog_runs.system.n_chips}",
        measure_level=measure_level,
        high_level=high_level,
        low_level=low_level,
        points=tuple(points),
    )
