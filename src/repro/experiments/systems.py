"""The paper's three experimental systems, plus cached catalog runs."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.arch import nehalem, power7
from repro.experiments.runner import CatalogRuns, run_catalog, run_catalog_batched
from repro.simos.system import SystemSpec
from repro.workloads.catalog import (
    NEHALEM_SET,
    NEHALEM_SMT1_SET,
    all_workloads,
    nehalem_catalog,
    power7_catalog,
)

DEFAULT_SEED = 11


def p7_system(n_chips: int = 1) -> SystemSpec:
    """AIX/POWER7: one or two 8-core chips (paper §III-A)."""
    return SystemSpec(power7(), n_chips)


def nehalem_system() -> SystemSpec:
    """Linux/Core i7 965: one quad-core chip (paper §III-A)."""
    return SystemSpec(nehalem(), 1)


def p7_runs(n_chips: int = 1, *, seed: int = DEFAULT_SEED,
            levels: Optional[Sequence[int]] = None) -> CatalogRuns:
    """The POWER7 benchmark set at SMT1/2/4 (batched sweep engine)."""
    return run_catalog_batched(
        p7_system(n_chips), power7_catalog(), levels or (1, 2, 4), seed=seed
    )


def nehalem_runs(*, seed: int = DEFAULT_SEED) -> CatalogRuns:
    """The Nehalem benchmark set (Fig. 10 + Fig. 12 entries) at SMT1/2."""
    specs = all_workloads()
    names = sorted(set(NEHALEM_SET) | set(NEHALEM_SMT1_SET))
    return run_catalog_batched(
        nehalem_system(), {n: specs[n] for n in names}, (1, 2), seed=seed
    )
