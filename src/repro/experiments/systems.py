"""The paper's three experimental systems.

Catalog sweeps go through the unified
:func:`repro.experiments.runner.run_catalog` entry point —
``run_catalog("p7", seed=...)`` / ``run_catalog("nehalem", ...)``
replace the old ``p7_runs``/``nehalem_runs`` helpers, which survive
here as :class:`DeprecationWarning` shims.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.arch import nehalem, power7
from repro.experiments.runner import CatalogRuns, run_catalog
from repro.simos.system import SystemSpec

DEFAULT_SEED = 11


def p7_system(n_chips: int = 1) -> SystemSpec:
    """AIX/POWER7: one or two 8-core chips (paper §III-A)."""
    return SystemSpec(power7(), n_chips)


def nehalem_system() -> SystemSpec:
    """Linux/Core i7 965: one quad-core chip (paper §III-A)."""
    return SystemSpec(nehalem(), 1)


def p7_runs(n_chips: int = 1, *, seed: int = DEFAULT_SEED,
            levels: Optional[Sequence[int]] = None) -> CatalogRuns:
    """Deprecated shim: use ``run_catalog("p7", n_chips=..., seed=...)``."""
    warnings.warn(
        "p7_runs is deprecated; call run_catalog('p7', n_chips=..., seed=...) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_catalog("p7", levels=levels, n_chips=n_chips, seed=seed)


def nehalem_runs(*, seed: int = DEFAULT_SEED) -> CatalogRuns:
    """Deprecated shim: use ``run_catalog("nehalem", seed=...)``."""
    warnings.warn(
        "nehalem_runs is deprecated; call run_catalog('nehalem', seed=...) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_catalog("nehalem", seed=seed)
