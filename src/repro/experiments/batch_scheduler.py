"""Extension experiment: SMTsm inside a batch scheduler (§V).

A mixed queue of ten jobs runs on the 8-core POWER7 under four
policies: static SMT4 (the shipping default), static SMT1, the SMTsm
policy (short probe at SMT4, then follow the metric), and the oracle
(exhaustive per-job search).  The metric policy should recover most of
the oracle's advantage over the default at a tenth of the probing cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments import fig06_smt4v1_at4, fig08_smt4v2_at4
from repro.experiments.runner import CatalogRuns
from repro.experiments.systems import DEFAULT_SEED, p7_system
from repro.simos.jobqueue import BatchJob, BatchOutcome, BatchScheduler
from repro.util.tables import format_table
from repro.workloads import get_workload

#: A queue mixing SMT-friendly, contended and memory-bound jobs.  Work
#: sizes keep both failure modes of a static policy visible: static-4
#: drowns in the contended/memory jobs, static-1 squanders the friendly
#: majority.
QUEUE: Tuple[Tuple[str, float], ...] = (
    ("EP", 3e10),
    ("Equake", 2e10),
    ("Blackscholes", 3e10),
    ("SPECjbb_contention", 1e10),
    ("CG_MPI", 3e10),
    ("Swim", 2e10),
    ("SPECjbb", 3e10),
    ("SSCA2", 1e10),
    ("Fluidanimate", 3e10),
    ("Daytrader", 3e10),
    ("EP_MPI", 3e10),
    ("Stream", 2e10),
)


@dataclass(frozen=True)
class BatchExperimentResult:
    outcomes: Dict[str, BatchOutcome]

    def makespans(self) -> Dict[str, float]:
        return {name: o.makespan_s for name, o in self.outcomes.items()}

    def render(self) -> str:
        rows = [[name, o.makespan_s] for name, o in sorted(
            self.outcomes.items(), key=lambda kv: kv[1].makespan_s)]
        table = format_table(
            ["policy", "makespan (s)"], rows,
            title="Extension: batch scheduler with per-job SMT policy "
                  "(10-job queue, 8-core POWER7)",
        )
        smtsm = self.outcomes["smtsm"]
        detail = format_table(
            ["job", "chosen level", "wall (s)", "probe metric"],
            [[r.name, f"SMT{r.level}", r.wall_time_s, r.measured_metric]
             for r in smtsm.records],
            title="SMTsm policy decisions",
        )
        return f"{table}\n\n{detail}"


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> BatchExperimentResult:
    p41 = fig06_smt4v1_at4.run(seed=seed, runs=runs).fit_predictor("gini")
    p42 = fig08_smt4v2_at4.run(seed=seed, runs=runs).fit_predictor("gini")
    system = p7_system()
    scheduler = BatchScheduler(system, seed=seed)
    jobs = [BatchJob(get_workload(name), work) for name, work in QUEUE]
    outcomes = {
        "static-4": scheduler.run_static(jobs, 4),
        "static-1": scheduler.run_static(jobs, 1),
        "smtsm": scheduler.run_smtsm(jobs, {1: p41, 2: p42}),
        "oracle": scheduler.run_oracle(jobs),
    }
    return BatchExperimentResult(outcomes=outcomes)
