"""Fig. 1: SMT1 vs SMT4 performance for Equake, MG and EP.

"Note that for Equake, SMT4 degraded the performance of the
application, while it improved the performance of EP.  MG's performance
was oblivious to whatever SMT level was used."  Each application runs
alone: 8 threads at SMT1, 32 at SMT4, on one 8-core POWER7 chip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.runner import CatalogRuns, run_catalog
from repro.experiments.systems import DEFAULT_SEED, p7_system
from repro.sim.results import speedup
from repro.util.tables import format_table
from repro.workloads.catalog import all_workloads

BENCHMARKS: Tuple[str, ...] = ("Equake", "MG", "EP")


@dataclass(frozen=True)
class MotivationResult:
    """Normalized performance at SMT1 (== 1.0) and SMT4."""

    normalized: Dict[str, Dict[int, float]]

    def render(self) -> str:
        rows = [
            [name, values[1], values[4]]
            for name, values in self.normalized.items()
        ]
        return format_table(
            ["application", "SMT1 (normalized)", "SMT4 (normalized)"],
            rows,
            title="Fig. 1: performance normalized to SMT1 (8-core POWER7)",
        )


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> MotivationResult:
    if runs is None:
        specs = all_workloads()
        runs = run_catalog(
            p7_system(), {n: specs[n] for n in BENCHMARKS}, (1, 4), seed=seed
        )
    normalized = {}
    for name in BENCHMARKS:
        by_level = runs.runs[name]
        normalized[name] = {1: 1.0, 4: speedup(by_level[4], by_level[1])}
    return MotivationResult(normalized=normalized)
