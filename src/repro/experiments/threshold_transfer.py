"""Extension experiment: does the fitted threshold transfer?

§V argues the threshold is robust for unseen applications because the
optimal separator range (Fig. 16) and the high-PPI plateau (Fig. 17)
are wide.  Two direct tests:

* **leave-one-out**: fit the threshold on 27 of the 28 POWER7
  benchmarks and predict the held-out one — the honest "new
  application" protocol;
* **seed transfer**: fit on one measurement campaign (seed) and
  evaluate on another, modelling run-to-run variation between the lab
  and the field.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.predictor import Observation, SmtPredictor
from repro.experiments import fig06_smt4v1_at4
from repro.experiments.runner import CatalogRuns
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED
from repro.util.tables import format_table


@dataclass(frozen=True)
class TransferResult:
    loo_correct: int
    loo_total: int
    loo_misses: Tuple[str, ...]
    seed_train: int
    seed_eval: int
    transfer_threshold: float
    transfer_correct: int
    transfer_total: int

    @property
    def loo_rate(self) -> float:
        return self.loo_correct / self.loo_total

    @property
    def transfer_rate(self) -> float:
        return self.transfer_correct / self.transfer_total

    def render(self) -> str:
        rows = [
            ["leave-one-out (new application)", f"{self.loo_correct}/{self.loo_total}",
             self.loo_rate],
            [f"seed transfer ({self.seed_train} -> {self.seed_eval})",
             f"{self.transfer_correct}/{self.transfer_total}", self.transfer_rate],
        ]
        table = format_table(
            ["protocol", "correct", "rate"], rows,
            title="Extension: threshold transferability (POWER7, SMT4/SMT1)",
        )
        return f"{table}\n\nleave-one-out misses: {', '.join(self.loo_misses) or 'none'}"


def _observations(runs: CatalogRuns) -> List[Observation]:
    return fig06_smt4v1_at4.run(runs=runs).observations()


def run(seed: int = DEFAULT_SEED, eval_seed: int = 101,
        runs: CatalogRuns = None) -> TransferResult:
    train_obs = _observations(runs if runs is not None else run_catalog("p7", seed=seed))

    # Leave-one-out over the training campaign.
    loo_misses: List[str] = []
    for held_out in train_obs:
        rest = [o for o in train_obs if o.name != held_out.name]
        predictor = SmtPredictor.fit(rest, high_level=4, low_level=1)
        if predictor.predicts_higher(held_out.metric) != held_out.prefers_higher:
            loo_misses.append(held_out.name)

    # Fit once on the training campaign, evaluate a fresh campaign.
    predictor = SmtPredictor.fit(train_obs, high_level=4, low_level=1)
    eval_obs = _observations(run_catalog("p7", seed=eval_seed))
    transfer_correct = sum(
        1 for o in eval_obs
        if predictor.predicts_higher(o.metric) == o.prefers_higher
    )
    return TransferResult(
        loo_correct=len(train_obs) - len(loo_misses),
        loo_total=len(train_obs),
        loo_misses=tuple(loo_misses),
        seed_train=seed,
        seed_eval=eval_seed,
        transfer_threshold=predictor.threshold,
        transfer_correct=transfer_correct,
        transfer_total=len(eval_obs),
    )
