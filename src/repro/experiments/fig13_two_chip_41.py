"""Fig. 13: SMT4/SMT1 vs SMTsm@SMT4 on a two-chip (16-core) POWER7.

Two chips introduce NUMA penalties and double the thread count at every
level: "more benchmarks ... are mis-predicted", "applications that have
a metric near the threshold are more likely to be mispredicted", and
"more applications prefer SMT1 over SMT4 ... with more software
threads, more contention for synchronization resources will be
introduced" (§IV-C).
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", n_chips=2, seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 13: SMT4/SMT1 speedup vs SMTsm@SMT4 (two 8-core POWER7 chips)",
        measure_level=4,
        high_level=4,
        low_level=1,
    )
