"""Fig. 16: Gini impurity vs candidate separator for SMT4/SMT1 on POWER7.

The §V-A threshold-selection method applied to the Fig. 6 data: the
curve's minimum gives the operating threshold, and the *width* of the
minimizing range indicates how robustly a new application would be
classified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.thresholds import GiniPoint, gini_curve, optimal_threshold_range
from repro.experiments import fig06_smt4v1_at4
from repro.experiments.runner import CatalogRuns
from repro.experiments.systems import DEFAULT_SEED
from repro.util.tables import format_table


@dataclass(frozen=True)
class GiniResult:
    curve: Tuple[GiniPoint, ...]
    best_range: Tuple[float, float]
    min_impurity: float

    def render(self, step: int = 10) -> str:
        rows = [[p.separator, p.impurity] for p in self.curve[::step]]
        table = format_table(
            ["separator", "impurity"], rows,
            title="Fig. 16: Gini impurity vs separator (SMT4/SMT1, POWER7)",
        )
        lo, hi = self.best_range
        return (
            f"{table}\n\noptimal separator range: [{lo:.4f}, {hi:.4f}]  "
            f"minimum impurity: {self.min_impurity:.3f}"
        )


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> GiniResult:
    scatter = fig06_smt4v1_at4.run(seed=seed, runs=runs)
    metrics, speedups = scatter.metrics(), scatter.speedups()
    curve = tuple(gini_curve(metrics, speedups))
    lo, hi, impurity = optimal_threshold_range(metrics, speedups)
    return GiniResult(curve=curve, best_range=(lo, hi), min_impurity=impurity)
