"""§V applied: the SMT-selection metric driving an online optimizer.

A phase-changing application (SMT-friendly compute alternating with a
contended-lock phase) runs under three policies:

* static SMT4 (the system default),
* static SMT1,
* the online optimizer — sample SMTsm at SMT4, switch down past the
  fitted threshold, periodically re-probe.

The adaptive policy should beat both static choices on the mixed
workload, demonstrating the paper's claim that the metric "can be used
with a scheduler or application optimizer to help guide its
optimization decisions".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.optimizer import OnlineSmtOptimizer, OptimizerConfig, OptimizerResult
from repro.core.predictor import SmtPredictor
from repro.experiments import fig06_smt4v1_at4, fig08_smt4v2_at4
from repro.experiments.runner import CatalogRuns
from repro.experiments.systems import DEFAULT_SEED, p7_system
from repro.util.tables import format_table
from repro.workloads.catalog import get_workload
from repro.workloads.phases import Phase, PhasedWorkload

#: Work per phase; several optimizer decision intervals fit in each.
#: The compute phase is longer than the contended one so that neither
#: static level dominates — the regime where adaptation matters.
COMPUTE_WORK = 3e10
CONTENDED_WORK = 2e10
REPEATS = 3


@dataclass(frozen=True)
class OptimizerExperimentResult:
    adaptive: OptimizerResult
    static_walls: Dict[int, float]
    predictors: Dict[int, SmtPredictor]

    @property
    def adaptive_wall(self) -> float:
        return self.adaptive.total_wall_time_s

    def best_static_wall(self) -> float:
        return min(self.static_walls.values())

    def render(self) -> str:
        rows = [[f"static SMT{level}", wall]
                for level, wall in sorted(self.static_walls.items())]
        rows.append(["adaptive (SMTsm)", self.adaptive_wall])
        table = format_table(
            ["policy", "wall time (s)"], rows,
            title="Online SMT optimization of a phase-changing application",
        )
        return (
            f"{table}\n\nswitches: {self.adaptive.n_switches}  "
            f"switch overhead: {self.adaptive.switch_overhead_s * 1e3:.1f} ms"
        )


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> OptimizerExperimentResult:
    """Train the predictors on the Fig. 6/8 data, then drive the phases."""
    p41 = fig06_smt4v1_at4.run(seed=seed, runs=runs).fit_predictor("gini")
    p42 = fig08_smt4v2_at4.run(seed=seed, runs=runs).fit_predictor("gini")
    system = p7_system()
    compute = get_workload("EP")
    contended = get_workload("SPECjbb_contention")
    phases = []
    for _ in range(REPEATS):
        phases.append(Phase(compute, COMPUTE_WORK))
        phases.append(Phase(contended, CONTENDED_WORK))
    workload = PhasedWorkload("compute-then-contend", tuple(phases))
    config = OptimizerConfig(
        predictors={1: p41, 2: p42},
        chunk_work=CONTENDED_WORK / 10,
        probe_every=5,
        probe_work_fraction=0.2,
        seed=seed,
    )
    optimizer = OnlineSmtOptimizer(system, config)
    adaptive = optimizer.run(workload)
    statics = {
        level: optimizer.run_static(workload, level)
        for level in system.arch.smt_levels
    }
    return OptimizerExperimentResult(
        adaptive=adaptive,
        static_walls=statics,
        predictors={1: p41, 2: p42},
    )
