"""Fig. 11: SMT4/SMT1 speedup vs SMTsm measured at **SMT1** (POWER7).

The negative result that motivates measuring at the highest SMT level:
"the metric is not able to foresee scalability limitations caused by
more threads at a higher SMT level; the metric is only capable of
detecting a slowdown when it is happening.  At SMT1 we are not able to
accurately capture contention ... so the metric breaks down at SMT1"
(§IV-B).  Lock-contention and cache-sharing casualties look innocent
with one thread per core.
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 11: SMT4/SMT1 speedup vs SMTsm@SMT1 (8-core POWER7)",
        measure_level=1,
        high_level=4,
        low_level=1,
    )
