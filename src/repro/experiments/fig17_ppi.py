"""Fig. 17: average percentage performance improvement vs threshold.

The §V-B alternative threshold method on the Fig. 6 data: for each
candidate threshold, the mean improvement expected from switching every
above-threshold benchmark from SMT4 down to SMT1.  The paper highlights
the wide plateau of thresholds whose expected improvement exceeds 15%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.thresholds import (
    PpiPoint,
    best_ppi_threshold,
    ppi_curve,
    ppi_plateau,
)
from repro.experiments import fig06_smt4v1_at4
from repro.experiments.runner import CatalogRuns
from repro.experiments.systems import DEFAULT_SEED
from repro.util.tables import format_table

#: The paper's plateau criterion.
PLATEAU_PCT = 15.0


@dataclass(frozen=True)
class PpiResult:
    curve: Tuple[PpiPoint, ...]
    best_threshold: float
    best_improvement_pct: float
    plateau: Tuple[float, float]

    def render(self, step: int = 10) -> str:
        rows = [[p.threshold, p.avg_improvement_pct] for p in self.curve[::step]]
        table = format_table(
            ["threshold", "avg improvement %"], rows,
            title="Fig. 17: average SMT4->SMT1 PPI vs threshold (POWER7)",
        )
        lo, hi = self.plateau
        return (
            f"{table}\n\nbest threshold {self.best_threshold:.4f} "
            f"({self.best_improvement_pct:.1f}%); "
            f">= {PLATEAU_PCT:.0f}% plateau: [{lo:.4f}, {hi:.4f}]"
        )


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> PpiResult:
    scatter = fig06_smt4v1_at4.run(seed=seed, runs=runs)
    metrics, speedups = scatter.metrics(), scatter.speedups()
    curve = tuple(ppi_curve(metrics, speedups))
    threshold, improvement = best_ppi_threshold(metrics, speedups)
    plateau = ppi_plateau(metrics, speedups, PLATEAU_PCT)
    return PpiResult(
        curve=curve,
        best_threshold=threshold,
        best_improvement_pct=improvement,
        plateau=plateau,
    )
