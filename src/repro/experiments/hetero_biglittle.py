"""SMTsm on a heterogeneous 4+4 big/little chip.

Runs the threshold-selection pipeline independently on each cluster of
the registered ``biglittle`` chip (POWER7-class big cores at SMT4,
ARM-class little cores at SMT2) over one common workload set, then
compares predicted-vs-best SMT level per workload *per cluster*.  The
interesting transfer question is asymmetric ceilings: the same workload
can prefer SMT4 on the big cluster and SMT1 on the little one, and the
metric must get both calls right from each cluster's own counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.arch.hetero import get_hetero
from repro.core.thresholds import optimal_threshold_range
from repro.experiments.runner import (
    ScatterResult,
    run_catalog,
    scatter_from_runs,
)
from repro.experiments.systems import DEFAULT_SEED
from repro.util.tables import format_table
from repro.workloads.catalog import ARMSMT_SET, armsmt_catalog

CHIP = "biglittle"


@dataclass(frozen=True)
class HeteroTransferResult:
    """Per-cluster scatters + thresholds on one heterogeneous chip."""

    chip_name: str
    scatters: Mapping[str, ScatterResult]        # cluster -> scatter
    thresholds: Mapping[str, Tuple[float, float]]  # cluster -> gini range

    def threshold_is_valid(self, cluster: str) -> bool:
        metrics = self.scatters[cluster].metrics()
        lo, hi = self.thresholds[cluster]
        mid = (lo + hi) / 2.0
        return min(metrics) < mid < max(metrics)

    def predicted_vs_best(self) -> Dict[str, Dict[str, Tuple[int, int]]]:
        """workload -> cluster -> (predicted level, best level)."""
        out: Dict[str, Dict[str, Tuple[int, int]]] = {}
        for cluster, scatter in self.scatters.items():
            predictor = scatter.fit_predictor()
            for p in scatter.points:
                predicted = predictor.recommend(p.metric)
                best = (scatter.high_level if p.speedup >= 1.0
                        else scatter.low_level)
                out.setdefault(p.name, {})[cluster] = (predicted, best)
        return out

    def render(self) -> str:
        clusters = list(self.scatters)
        table_rows = []
        hits = {c: 0 for c in clusters}
        per_workload = self.predicted_vs_best()
        for name in sorted(per_workload):
            row = [name]
            for cluster in clusters:
                pred, best = per_workload[name].get(cluster, (None, None))
                if pred is None:
                    row.append("-")
                    continue
                mark = "" if pred == best else " MISS"
                row.append(f"SMT{pred}/SMT{best}{mark}")
                if pred == best:
                    hits[cluster] += 1
            table_rows.append(row)
        header = ["benchmark"] + [
            f"{c} predicted/best" for c in clusters
        ]
        table = format_table(
            header, table_rows,
            title=(f"SMTsm on {self.chip_name}: predicted vs best SMT "
                   "level per cluster"),
        )
        lines = [table, ""]
        for cluster in clusters:
            lo, hi = self.thresholds[cluster]
            n = len(self.scatters[cluster].points)
            lines.append(
                f"{cluster}: gini threshold range [{lo:.4f}, {hi:.4f}], "
                f"success {hits[cluster]}/{n} "
                f"({100 * hits[cluster] / n:.0f}%), "
                f"valid: {self.threshold_is_valid(cluster)}"
            )
        return "\n".join(lines)


def run(seed: int = DEFAULT_SEED, runs=None) -> HeteroTransferResult:
    """``runs`` (cluster -> CatalogRuns) is a test seam; computed when
    absent.  Both clusters sweep the same workload set so the per-
    workload comparison is apples-to-apples."""
    chip = get_hetero(CHIP)
    catalog = armsmt_catalog()
    scatters: Dict[str, ScatterResult] = {}
    thresholds: Dict[str, Tuple[float, float]] = {}
    for spec in chip.clusters:
        arch_name = f"{CHIP}.{spec.name}"
        cluster_runs = (runs or {}).get(spec.name)
        if cluster_runs is None:
            cluster_runs = run_catalog(arch_name, catalog, seed=seed)
        high = spec.arch.max_smt
        scatter = scatter_from_runs(
            cluster_runs,
            title=(f"SMT{high}/SMT1 speedup vs SMTsm@SMT{high} "
                   f"({arch_name})"),
            measure_level=high,
            high_level=high,
            low_level=1,
            names=ARMSMT_SET,
        )
        lo, hi, _ = optimal_threshold_range(
            scatter.metrics(), scatter.speedups()
        )
        scatters[spec.name] = scatter
        thresholds[spec.name] = (lo, hi)
    return HeteroTransferResult(
        chip_name=CHIP, scatters=scatters, thresholds=thresholds,
    )
