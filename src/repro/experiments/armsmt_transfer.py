"""SMTsm transfer to the ARM-style 2-way SMT chip.

The paper derives the metric on POWER7 and Nehalem; this experiment
checks the *transfer claim* — that the metric's threshold-selection
machinery (Gini impurity minimization of §V-A and the PPI maximization
of §V-B) carries over unchanged to a SYNPA-flavored ARMv8 2-way SMT
core with competitively-arbitrated issue ports.  A valid transfer means
both methods produce a finite threshold inside the observed metric
range and the fitted predictor beats the always-SMT2 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.thresholds import best_ppi_threshold, optimal_threshold_range
from repro.experiments.runner import (
    CatalogRuns,
    ScatterResult,
    run_catalog,
    scatter_from_runs,
)
from repro.experiments.systems import DEFAULT_SEED
from repro.util.tables import format_table
from repro.workloads.catalog import ARMSMT_SET


@dataclass(frozen=True)
class ArmTransferResult:
    """Scatter + both fitted thresholds on the ARM chip."""

    scatter: ScatterResult
    gini_range: Tuple[float, float]
    min_impurity: float
    ppi_threshold: float
    ppi_improvement_pct: float

    @property
    def threshold(self) -> float:
        """The operating threshold: the Gini range midpoint."""
        lo, hi = self.gini_range
        return (lo + hi) / 2.0

    def threshold_is_valid(self) -> bool:
        """True when both methods landed strictly inside the metric range
        (a degenerate edge threshold would classify every workload the
        same way — no transfer)."""
        metrics = self.scatter.metrics()
        lo, hi = min(metrics), max(metrics)
        return lo < self.threshold < hi and lo <= self.ppi_threshold <= hi

    def predicted_vs_best(self):
        """Rows of (workload, metric, predicted level, best level, hit)."""
        predictor = self.scatter.fit_predictor()
        rows = []
        for p in sorted(self.scatter.points, key=lambda p: p.metric):
            predicted = predictor.recommend(p.metric)
            best = (self.scatter.high_level if p.speedup >= 1.0
                    else self.scatter.low_level)
            rows.append((p.name, p.metric, predicted, best, predicted == best))
        return rows

    def render(self) -> str:
        rows = [
            [name, metric, f"SMT{pred}", f"SMT{best}",
             "ok" if hit else "MISS"]
            for name, metric, pred, best, hit in self.predicted_vs_best()
        ]
        table = format_table(
            ["benchmark", "SMTsm@SMT2", "predicted", "best", ""],
            rows,
            title="SMTsm transfer: predicted vs best SMT level (ARMv8-SMT2)",
        )
        summary = self.scatter.success()
        lo, hi = self.gini_range
        return "\n".join([
            table,
            "",
            f"gini threshold range: [{lo:.4f}, {hi:.4f}] "
            f"(impurity {self.min_impurity:.3f})",
            f"ppi threshold: {self.ppi_threshold:.4f} "
            f"({self.ppi_improvement_pct:.1f}% avg improvement)",
            f"success = {summary.n_correct}/{summary.n_total} "
            f"({100 * summary.success_rate:.0f}%) at "
            f"threshold {summary.threshold:.4f}",
            f"transfer valid: {self.threshold_is_valid()}",
        ])


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ArmTransferResult:
    if runs is None:
        runs = run_catalog("armsmt", seed=seed)
    scatter = scatter_from_runs(
        runs,
        title="SMT2/SMT1 speedup vs SMTsm@SMT2 (ARMv8-SMT2)",
        measure_level=2,
        high_level=2,
        low_level=1,
        names=ARMSMT_SET,
    )
    metrics, speedups = scatter.metrics(), scatter.speedups()
    lo, hi, impurity = optimal_threshold_range(metrics, speedups)
    ppi_threshold, improvement = best_ppi_threshold(metrics, speedups)
    return ArmTransferResult(
        scatter=scatter,
        gini_range=(lo, hi),
        min_impurity=impurity,
        ppi_threshold=ppi_threshold,
        ppi_improvement_pct=improvement,
    )
