"""Fig. 14: SMT4/SMT2 vs SMTsm@SMT4 on a two-chip (16-core) POWER7.

"The SMT4/SMT2 results look better than the SMT4/SMT1 results" at 16
cores — the thread-count change between the compared levels is smaller,
so the scalability-detection part of the metric holds up (§IV-C).
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", n_chips=2, seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 14: SMT4/SMT2 speedup vs SMTsm@SMT4 (two 8-core POWER7 chips)",
        measure_level=4,
        high_level=4,
        low_level=2,
    )
