"""Extension experiment: mix-guided SMT co-scheduling.

The paper's related work (§VI) frames symbiotic job scheduling (SOS,
Settle et al., Eyerman/Eeckhout) as the complementary problem to SMT
level selection.  Here the ideal-SMT-mix principle behind SMTsm's first
factor is reused as a pairing heuristic: on a quad-core Nehalem, eight
single-threaded jobs are paired two-per-core at SMT2 by (a) greedy
combined-mix complementarity, (b) random assignment, (c) adversarial
(deviation-maximizing) pairing — and scored by weighted speedup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.coschedule import (
    Job,
    ScheduleOutcome,
    adversarial_pairing,
    evaluate_pairing,
    mix_complementary_pairing,
    random_pairing,
)
from repro.experiments.systems import DEFAULT_SEED, nehalem_system
from repro.util.rng import RngStream
from repro.util.tables import format_table
from repro.workloads import get_workload

#: Eight jobs spanning the mix *and* cache-sensitivity space (two per
#: core on four cores).  Streamcluster/SPECjbb/IS are the
#: capacity-sensitive entries whose partners matter most.
JOB_NAMES: Tuple[str, ...] = (
    "Blackscholes", "swaptions",         # VS-heavy compute, cold caches
    "freqmine", "x264",                  # integer/branchy
    "Streamcluster", "SPECjbb",          # hot, capacity-sensitive
    "EP", "IS",                          # balanced compute / hot integer
)
RANDOM_DRAWS = 20


@dataclass(frozen=True)
class CoscheduleResult:
    guided: ScheduleOutcome
    adversarial: ScheduleOutcome
    random_mean: float
    random_std: float

    def render(self) -> str:
        rows = [
            ["mix-guided (SMTsm principle)", self.guided.weighted_speedup,
             self.guided.avg_symbiosis],
            [f"random (mean of {RANDOM_DRAWS})", self.random_mean,
             self.random_mean / len(self.guided.per_job_slowdown)],
            ["adversarial", self.adversarial.weighted_speedup,
             self.adversarial.avg_symbiosis],
        ]
        table = format_table(
            ["policy", "weighted speedup", "avg per-job efficiency"],
            rows,
            title="Extension: SMT co-scheduling on quad-core Nehalem (8 jobs, SMT2)",
        )
        pairs = ", ".join(f"({a.name}+{b.name})" for a, b in self.guided.pairing)
        return f"{table}\n\nguided pairing: {pairs}"


def run(seed: int = DEFAULT_SEED) -> CoscheduleResult:
    system = nehalem_system()
    arch = system.arch
    jobs = [Job(name, get_workload(name).stream) for name in JOB_NAMES]

    guided = evaluate_pairing(system, mix_complementary_pairing(arch, jobs))
    adversarial = evaluate_pairing(system, adversarial_pairing(arch, jobs))

    rng = RngStream(seed, ("coschedule",))
    draws = [
        evaluate_pairing(system, random_pairing(jobs, rng.child(i))).weighted_speedup
        for i in range(RANDOM_DRAWS)
    ]
    return CoscheduleResult(
        guided=guided,
        adversarial=adversarial,
        random_mean=float(np.mean(draws)),
        random_std=float(np.std(draws)),
    )
