"""Fig. 12: SMT2/SMT1 speedup vs SMTsm measured at **SMT1** (Nehalem).

The Nehalem counterpart of Fig. 11's breakdown: measured with one
thread per core, the metric cannot see what two threads per core will
contend over.
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED
from repro.workloads.catalog import NEHALEM_SMT1_SET


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("nehalem", seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 12: SMT2/SMT1 speedup vs SMTsm@SMT1 (quad-core Core i7)",
        measure_level=1,
        high_level=2,
        low_level=1,
        names=NEHALEM_SMT1_SET,
    )
