"""Fig. 8: SMT4/SMT2 speedup vs SMTsm measured at SMT4 (1-chip POWER7).

"Once again a threshold of 0.07 provides good separation.  All of the
benchmarks with a metric greater than the threshold prefer SMT2."
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED

PAPER_THRESHOLD = 0.07


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 8: SMT4/SMT2 speedup vs SMTsm@SMT4 (8-core POWER7)",
        measure_level=4,
        high_level=4,
        low_level=2,
    )
