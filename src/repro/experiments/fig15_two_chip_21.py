"""Fig. 15: SMT2/SMT1 vs SMTsm@SMT2 on a two-chip (16-core) POWER7.

"Fig. 15 demonstrates that SMT2/SMT1 prediction is ineffective, the
same as in the single chip case" (§IV-C).
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", n_chips=2, seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 15: SMT2/SMT1 speedup vs SMTsm@SMT2 (two 8-core POWER7 chips)",
        measure_level=2,
        high_level=2,
        low_level=1,
    )
