"""Extension experiment: offline tuning vs the online metric.

§I dismisses offline SMT tuning: comparing performance with and without
SMT "in an offline analysis" fails when "the application behavior
significantly changes depending on the input".  This experiment stages
exactly that failure:

* **offline policy** — for each application, run both SMT levels on the
  *test* input (scale 1.0) and fix the level that won;
* **online policy (SMTsm)** — in the field, read the metric from the
  *production* input's own counters and decide with the pre-fitted
  threshold.

Production inputs are scaled versions of the test inputs (working sets
shrunk or grown), which flips several applications' SMT preference —
the offline decision goes stale; the online metric follows the
behaviour actually executing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.metric import smtsm_from_run
from repro.core.predictor import SmtPredictor
from repro.experiments import fig06_smt4v1_at4
from repro.experiments.runner import CatalogRuns
from repro.experiments.systems import DEFAULT_SEED, p7_system
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.results import speedup
from repro.util.tables import format_table
from repro.workloads import get_workload
from repro.workloads.variants import scaled_input

#: (application, production-input scale).  Scales are chosen to move
#: working sets across cache capacities: memory-bound apps shrink until
#: they fit (SMT4 starts winning); cache-friendly apps grow until they
#: thrash (SMT4 starts losing).  Equake@0.05 is a deliberate blind-spot
#: probe: its preference flips, but its VS-heavy mix keeps the metric's
#: deviation factor high, so the online decision misses too — the
#: limits of a mix-anchored metric, worth knowing about.
DEPLOYMENTS: Tuple[Tuple[str, float], ...] = (
    ("IS", 0.05),              # loser fits in cache -> SMT4 wins (flip)
    ("MG", 0.05),              # bandwidth-bound shrinks -> SMT4 wins (flip)
    ("BT", 30.0),              # winner thrashes at huge input (flip)
    ("Equake", 0.05),          # flip the metric cannot see (blind spot)
    ("EP", 8.0),               # compute-bound: preference stable
    ("Blackscholes", 0.5),     # stable winner
    ("Fluidanimate", 2.0),     # stable winner
    ("Swim", 2.0),             # stable loser
    ("SSCA2", 1.0),            # unchanged input: both should agree
    ("SPECjbb_contention", 1.0),  # stable loser (lock bound)
)


@dataclass(frozen=True)
class DeploymentOutcome:
    name: str
    scale: float
    test_speedup: float        # SMT4/SMT1 on the test input
    prod_speedup: float        # SMT4/SMT1 on the production input
    offline_choice: int
    online_choice: int
    prod_metric: float

    @property
    def best(self) -> int:
        return 4 if self.prod_speedup >= 1.0 else 1

    @property
    def offline_correct(self) -> bool:
        return self.offline_choice == self.best

    @property
    def online_correct(self) -> bool:
        return self.online_choice == self.best


@dataclass(frozen=True)
class OfflineVsOnlineResult:
    outcomes: Tuple[DeploymentOutcome, ...]
    threshold: float

    def offline_success(self) -> float:
        return sum(o.offline_correct for o in self.outcomes) / len(self.outcomes)

    def online_success(self) -> float:
        return sum(o.online_correct for o in self.outcomes) / len(self.outcomes)

    def preference_flips(self) -> int:
        return sum(
            1 for o in self.outcomes
            if (o.test_speedup >= 1.0) != (o.prod_speedup >= 1.0)
        )

    def render(self) -> str:
        rows = []
        for o in self.outcomes:
            rows.append([
                o.name, o.scale, o.test_speedup, o.prod_speedup,
                f"SMT{o.offline_choice}", "ok" if o.offline_correct else "STALE",
                f"SMT{o.online_choice}", "ok" if o.online_correct else "WRONG",
            ])
        table = format_table(
            ["application", "input scale", "s41 (test)", "s41 (prod)",
             "offline", "", "online", ""],
            rows,
            title="Extension: offline tuning vs online SMTsm under input change",
        )
        return (
            f"{table}\n\npreference flips: {self.preference_flips()} / "
            f"{len(self.outcomes)}   offline: {self.offline_success():.0%}   "
            f"online (threshold {self.threshold:.3f}): {self.online_success():.0%}"
        )


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> OfflineVsOnlineResult:
    system = p7_system()
    predictor: SmtPredictor = fig06_smt4v1_at4.run(
        seed=seed, runs=runs
    ).fit_predictor("gini")

    outcomes: List[DeploymentOutcome] = []
    for name, scale in DEPLOYMENTS:
        base = get_workload(name)
        prod = scaled_input(base, scale)

        def run_at(spec, level, tag):
            # crc32, not hash(): string hashing is randomized per
            # process, which made the whole experiment nondeterministic.
            return simulate_run(
                RunSpec(system, level, spec.stream, spec.sync,
                        seed=seed + zlib.crc32(tag.encode()) % 1000)
            )

        test_runs = {l: run_at(base, l, f"{name}-test-{l}") for l in (1, 4)}
        prod_runs = {l: run_at(prod, l, f"{name}-prod-{l}") for l in (1, 4)}
        test_s = speedup(test_runs[4], test_runs[1])
        prod_s = speedup(prod_runs[4], prod_runs[1])
        metric = smtsm_from_run(prod_runs[4])
        outcomes.append(
            DeploymentOutcome(
                name=name,
                scale=scale,
                test_speedup=test_s,
                prod_speedup=prod_s,
                offline_choice=4 if test_s >= 1.0 else 1,
                online_choice=predictor.recommend(metric.value),
                prod_metric=metric.value,
            )
        )
    return OfflineVsOnlineResult(
        outcomes=tuple(outcomes), threshold=predictor.threshold
    )
