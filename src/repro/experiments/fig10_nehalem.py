"""Fig. 10: SMT2/SMT1 speedup vs SMTsm@SMT2 on the Linux/Core i7 system.

"In this experiment, a stronger correlation than in any of the
AIX/POWER7 experiments is observed ... only a few of the benchmarks
prefer SMT1 over SMT2."  Streamcluster is the far-right outlier: its
~40% loads put it far from the Eq. 3 ideal, but with 8 L3 MPKI on
Nehalem the bottleneck is the memory system, not the load port, so
extra SMT threads still help (§IV-A).  Success rate: 86%.
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED
from repro.workloads.catalog import NEHALEM_SET

OUTLIER = "Streamcluster"


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("nehalem", seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 10: SMT2/SMT1 speedup vs SMTsm@SMT2 (quad-core Core i7)",
        measure_level=2,
        high_level=2,
        low_level=1,
        names=NEHALEM_SET,
    )
