"""Table I: the benchmark catalog."""

from __future__ import annotations

from repro.util.tables import format_table
from repro.workloads.catalog import table1_rows


def run() -> str:
    """Render Table I."""
    return format_table(
        ["Label", "Suite", "Problem Size", "Description"],
        table1_rows(),
        title="Table I: Benchmarks Evaluated",
    )
