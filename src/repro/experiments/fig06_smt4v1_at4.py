"""Fig. 6: SMT4/SMT1 speedup vs SMTsm measured at SMT4 (1-chip POWER7).

The paper's headline result: "a clear correlation between the metric
value and the speedup ... If we set a threshold close to the value of
0.07 then we can be confident that any application with a metric
greater than the threshold will perform better at SMT1 than SMT4" —
with only two below-threshold benchmarks performing slightly worse at
SMT4, for a 93% success rate.
"""

from __future__ import annotations

from repro.experiments.runner import CatalogRuns, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED

#: The eyeballed threshold the paper quotes for this system.
PAPER_THRESHOLD = 0.07


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 6: SMT4/SMT1 speedup vs SMTsm@SMT4 (8-core POWER7)",
        measure_level=4,
        high_level=4,
        low_level=1,
    )
