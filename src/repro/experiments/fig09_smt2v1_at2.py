"""Fig. 9: SMT2/SMT1 speedup vs SMTsm measured at SMT2 (1-chip POWER7).

Here the metric is only partially predictive: "For metric values below
0.07 or above 0.19, we can predict the optimum SMT level.  However, for
metric values between 0.07 and 0.19, it is not possible to predict the
application's SMT preference" — SMT2 contention is too mild to expose
who will lose.
"""

from __future__ import annotations

from typing import List

from repro.experiments.runner import CatalogRuns, ScatterPoint, ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED

#: The paper's unambiguous-prediction boundaries for this figure.
LOWER_BOUND = 0.07
UPPER_BOUND = 0.19


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> ScatterResult:
    if runs is None:
        runs = run_catalog("p7", seed=seed)
    return scatter_from_runs(
        runs,
        title="Fig. 9: SMT2/SMT1 speedup vs SMTsm@SMT2 (8-core POWER7)",
        measure_level=2,
        high_level=2,
        low_level=1,
    )


def ambiguous_band(result: ScatterResult,
                   lower: float = LOWER_BOUND,
                   upper: float = UPPER_BOUND) -> List[ScatterPoint]:
    """The points between the two bounds, where prediction fails."""
    return [p for p in result.points if lower < p.metric < upper]
