"""Related-work replication: Mathis et al.'s POWER5 SMT2 study (§VI).

"To measure the SMT2 gain of an application, they simply run one copy
of the application per available hardware thread/context with and
without SMT.  The authors found that most of the tested applications
have a moderate performance improvement with SMT.  They also found
that applications with the smallest improvement have more cache misses
when using SMT."

Protocol reproduced here: independent single-threaded copies (no
synchronization, ``data_sharing = 0`` since copies are separate
processes) fill every context of a dual-core POWER5 — 2 copies at
SMT1, 4 at SMT2 — and the gain is aggregate throughput per copy-pair.
The paper's §VI point also holds downstream: this single-threaded
protocol says nothing about multi*threaded* SMT preference, which is
what SMTsm exists for.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.analysis.correlation import pearson
from repro.arch.power5 import power5
from repro.sim.cache import CacheModel, SharingContext
from repro.sim.chip import solve_chip
from repro.simos.scheduler import place_threads
from repro.simos.system import SystemSpec
from repro.util.tables import format_table
from repro.workloads import get_workload

#: Single-threaded stand-ins: the catalog streams describe one thread's
#: behaviour, which is exactly a single-threaded copy of the code.
APPLICATIONS: Tuple[str, ...] = (
    "EP", "Blackscholes", "swaptions", "Wupwise", "Fma3d", "BT",
    "freqmine", "SPECjbb", "Apsi", "Ammp", "CG", "Equake", "Swim",
    "Stream", "canneal",
)


@dataclass(frozen=True)
class MathisResult:
    gains: Dict[str, float]          # SMT2/SMT1 multiprogrammed throughput
    l1_mpki_at_smt2: Dict[str, float]
    correlation: float               # gain vs misses (expected negative)

    def render(self) -> str:
        rows = [[name, self.gains[name], self.l1_mpki_at_smt2[name]]
                for name in sorted(self.gains, key=self.gains.get, reverse=True)]
        table = format_table(
            ["application", "SMT2 gain (copies)", "L1 MPKI @SMT2"], rows,
            title="Related work: Mathis et al. protocol on POWER5 "
                  "(one single-threaded copy per context)",
        )
        return (f"{table}\n\ncorrelation(gain, L1 misses) = "
                f"{self.correlation:.2f}")


def run() -> MathisResult:
    system = SystemSpec(power5(), n_chips=1)
    cache = CacheModel(system.arch)
    gains: Dict[str, float] = {}
    misses: Dict[str, float] = {}
    for name in APPLICATIONS:
        base = get_workload(name).stream
        # Separate processes: no shared data between copies.
        stream = replace(base, memory=replace(base.memory, data_sharing=0.0))
        throughput = {}
        for level in (1, 2):
            n_copies = system.contexts_at(level)
            placement = place_threads(system, level, n_copies)
            solution = solve_chip(placement, stream)
            throughput[level] = solution.aggregate_ipc
        gains[name] = throughput[2] / throughput[1]
        rates = cache.effective_rates(
            stream.memory, SharingContext(threads_per_core=2, threads_per_chip=4)
        )
        misses[name] = rates.l1_mpki
    xs = [misses[n] for n in APPLICATIONS]
    ys = [gains[n] for n in APPLICATIONS]
    return MathisResult(
        gains=gains,
        l1_mpki_at_smt2=misses,
        correlation=pearson(xs, ys),
    )
