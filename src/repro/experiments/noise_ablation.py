"""Robustness ablation: SMT decision accuracy vs injected counter noise.

The question the fault-injection subsystem exists to answer: *how much
measurement error can the metric absorb before its SMT decisions
degrade?*  For each fault severity, every catalog workload is sampled
online at the maximum SMT level through the full measurement stack —
:class:`~repro.counters.perfstat.PerfStat` on top of a
:class:`~repro.faults.FaultyApp` on top of a
:class:`~repro.sim.online.SteadyApp` — and two controllers read the
same corrupted stream:

* the **naive** controller re-decides from every raw reading (and
  simply fails when a multiplex dropout removed the events it needs);
* the **hardened** controller
  (:class:`~repro.core.robust.HardenedController`) smooths with a
  confidence-weighted EWMA, rejects outliers, debounces with a switch
  cooldown and holds a hysteresis band around the fitted threshold.

A decision is *correct* when it matches the fitted predictor's
decision on the clean zero-noise metric.  The acceptance claim pinned
by ``tests/experiments/test_noise_ablation.py`` and recorded in
``BENCH_robustness.json``: at :data:`DOCUMENTED_SEVERITY` the naive
controller mispredicts at least 20% of its readings while the hardened
controller stays within 5 points of its own zero-noise accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.predictor import SmtPredictor
from repro.core.robust import HardenedConfig, HardenedController, naive_decision
from repro.counters.perfstat import PerfStat, PerfStatConfig
from repro.experiments.runner import CatalogRuns, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED
from repro.faults import FaultyApp, noise_profile
from repro.sim.online import SteadyApp
from repro.util.rng import spawn_rng
from repro.util.tables import format_table
from repro.workloads import all_workloads

#: The swept composite fault severities (see repro.faults.noise_profile).
NOISE_SEVERITIES: Tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)
#: The severity the acceptance claim is made at (documented in
#: docs/robustness.md together with the fault mix it implies).
DOCUMENTED_SEVERITY = 0.4
#: Sampling intervals per (workload, trial) and independent trials.
SAMPLES_PER_TRIAL = 20
TRIALS = 3
INTERVAL_S = 0.05


@dataclass(frozen=True)
class NoiseCell:
    """Accuracy of both controllers at one fault severity."""

    severity: float
    naive_accuracy: float       # per raw reading (a naive controller
                                # re-decides every interval)
    hardened_accuracy: float    # per (workload, trial) final level
    naive_crashes: int          # readings the naive path could not even
                                # evaluate (missing events)
    n_readings: int
    n_trials: int

    @property
    def naive_mispredict_rate(self) -> float:
        return 1.0 - self.naive_accuracy


@dataclass(frozen=True)
class NoiseAblationResult:
    """One architecture's full severity sweep."""

    arch: str
    system_name: str
    threshold: float
    reference: Mapping[str, int]
    cells: Tuple[NoiseCell, ...]
    samples_per_trial: int
    trials: int

    def cell(self, severity: float) -> NoiseCell:
        for cell in self.cells:
            if abs(cell.severity - severity) < 1e-12:
                return cell
        raise KeyError(f"severity {severity} not in sweep "
                       f"{[c.severity for c in self.cells]}")

    def zero_noise(self) -> NoiseCell:
        return self.cell(0.0)

    def render(self) -> str:
        rows = [
            [c.severity, 100 * c.naive_accuracy, c.naive_crashes,
             100 * c.hardened_accuracy]
            for c in self.cells
        ]
        table = format_table(
            ["severity", "naive acc (%)", "naive crashes", "hardened acc (%)"],
            rows,
            title=f"Decision accuracy vs injected counter noise "
                  f"({self.system_name}, threshold {self.threshold:.4f})",
        )
        doc = self.cell(DOCUMENTED_SEVERITY) if any(
            abs(c.severity - DOCUMENTED_SEVERITY) < 1e-12 for c in self.cells
        ) else None
        lines = [table, "",
                 f"{len(self.reference)} workloads, "
                 f"{self.samples_per_trial} samples x {self.trials} trials each"]
        if doc is not None:
            lines.append(
                f"at documented severity {DOCUMENTED_SEVERITY}: naive "
                f"mispredicts {100 * doc.naive_mispredict_rate:.0f}% of "
                f"readings, hardened holds "
                f"{100 * doc.hardened_accuracy:.0f}% "
                f"(zero-noise {100 * self.zero_noise().hardened_accuracy:.0f}%)"
            )
        return "\n".join(lines)

    def payload(self) -> Dict[str, Any]:
        """JSON-ready record (the shape stored in BENCH_robustness.json)."""
        return {
            "arch": self.arch,
            "system": self.system_name,
            "threshold": self.threshold,
            "samples_per_trial": self.samples_per_trial,
            "trials": self.trials,
            "documented_severity": DOCUMENTED_SEVERITY,
            "cells": [
                {
                    "severity": c.severity,
                    "naive_accuracy": c.naive_accuracy,
                    "naive_mispredict_rate": c.naive_mispredict_rate,
                    "naive_crashes": c.naive_crashes,
                    "hardened_accuracy": c.hardened_accuracy,
                    "n_readings": c.n_readings,
                    "n_trials": c.n_trials,
                }
                for c in self.cells
            ],
        }


def _arch_setup(arch: str, seed: int, runs: Optional[CatalogRuns]):
    if arch in ("p7", "power7"):
        runs = runs if runs is not None else run_catalog("p7", seed=seed)
        return runs, 4, 4, 1
    if arch == "nehalem":
        runs = runs if runs is not None else run_catalog("nehalem", seed=seed)
        return runs, 2, 2, 1
    raise ValueError(f"unknown arch {arch!r} (use p7 or nehalem)")


def run(
    seed: int = DEFAULT_SEED,
    *,
    arch: str = "p7",
    severities: Sequence[float] = NOISE_SEVERITIES,
    samples: int = SAMPLES_PER_TRIAL,
    trials: int = TRIALS,
    runs: Optional[CatalogRuns] = None,
    controller_config: Optional[HardenedConfig] = None,
) -> NoiseAblationResult:
    """Sweep fault severity and score both controllers against the
    clean-metric reference decision."""
    if samples < 1 or trials < 1:
        raise ValueError("samples and trials must both be >= 1")
    runs, measure_level, high_level, low_level = _arch_setup(arch, seed, runs)
    scatter = scatter_from_runs(
        runs, title="noise-ablation training", measure_level=measure_level,
        high_level=high_level, low_level=low_level,
    )
    predictor: SmtPredictor = scatter.fit_predictor("gini")
    reference = {p.name: predictor.recommend(p.metric) for p in scatter.points}
    predictors = {low_level: predictor}
    catalog = all_workloads()
    system = runs.system

    cells = []
    for severity in severities:
        config = noise_profile(severity)
        naive_ok = 0
        naive_crashes = 0
        n_readings = 0
        hardened_ok = 0
        n_trials = 0
        for trial in range(trials):
            for name, want in reference.items():
                app = SteadyApp(system, measure_level, catalog[name], seed=seed)
                rng = spawn_rng(seed, "noise-ablation", name, trial,
                                int(round(severity * 1000)))
                faulty = FaultyApp(app, config, rng=rng)
                perf = PerfStat(
                    PerfStatConfig(interval_s=INTERVAL_S), rng=rng.child("perf")
                )
                controller = HardenedController(predictors, controller_config)
                for _ in range(samples):
                    reading = perf.sample(faulty)
                    decided = naive_decision(reading.sample, predictors)
                    n_readings += 1
                    if decided is None:
                        naive_crashes += 1
                    elif decided == want:
                        naive_ok += 1
                    controller.observe(reading.sample)
                n_trials += 1
                if controller.level == want:
                    hardened_ok += 1
        cells.append(
            NoiseCell(
                severity=float(severity),
                naive_accuracy=naive_ok / n_readings,
                hardened_accuracy=hardened_ok / n_trials,
                naive_crashes=naive_crashes,
                n_readings=n_readings,
                n_trials=n_trials,
            )
        )

    return NoiseAblationResult(
        arch=arch,
        system_name=f"{system.arch.name} x{system.n_chips}",
        threshold=predictor.threshold,
        reference=reference,
        cells=tuple(cells),
        samples_per_trial=samples,
        trials=trials,
    )
