"""Fig. 7: instruction mixes of five benchmarks vs the ideal POWER7 mix.

"As we move from the left of the figure to the right, the speedup going
from SMT1 to SMT4 decreases from 1.82 to 0.25, while the instruction
mix tends to be more and more dominated with one or fewer functional
units or less diverse."  The mixes shown are the *executed* mixes at
SMT4 — SPECjbb-contention's is spin-polluted, which is the point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch.classes import CLASS_ORDER, InstrClass
from repro.experiments.runner import CatalogRuns, run_catalog
from repro.experiments.systems import DEFAULT_SEED, p7_system
from repro.sim.results import speedup
from repro.util.tables import format_table
from repro.workloads.catalog import all_workloads

#: Paper order, most to least SMT4-friendly.
BENCHMARKS: Tuple[str, ...] = (
    "Blackscholes", "Fluidanimate", "Dedup", "SSCA2", "SPECjbb_contention",
)


@dataclass(frozen=True)
class MixLadderResult:
    mixes: Dict[str, Dict[InstrClass, float]]   # executed mix at SMT4
    speedups: Dict[str, float]                  # SMT4/SMT1
    ideal: Dict[InstrClass, float]
    deviations: Dict[str, float]

    def render(self) -> str:
        headers = ["benchmark"] + [c.name for c in CLASS_ORDER] + [
            "deviation", "SMT4/SMT1"]
        rows = []
        for name in self.mixes:
            mix = self.mixes[name]
            rows.append([name] + [mix[c] for c in CLASS_ORDER]
                        + [self.deviations[name], self.speedups[name]])
        rows.append(["idealP7SMTmix"] + [self.ideal[c] for c in CLASS_ORDER]
                    + [0.0, None])
        return format_table(
            headers, rows,
            title="Fig. 7: executed instruction mix @SMT4 (8-core POWER7)",
            float_fmt=".3f",
        )


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> MixLadderResult:
    if runs is None:
        specs = all_workloads()
        runs = run_catalog(
            p7_system(), {n: specs[n] for n in BENCHMARKS}, (1, 4), seed=seed
        )
    arch = runs.system.arch
    ideal_vec = arch.ideal_vector()
    ideal = {c: float(ideal_vec[c]) for c in CLASS_ORDER}
    mixes, speedups, deviations = {}, {}, {}
    for name in BENCHMARKS:
        by_level = runs.runs[name]
        sample = by_level[4].counter_sample()
        mix = sample.mix()
        mixes[name] = mix.as_dict()
        speedups[name] = speedup(by_level[4], by_level[1])
        deviations[name] = arch.mix_deviation(mix)
    return MixLadderResult(
        mixes=mixes, speedups=speedups, ideal=ideal, deviations=deviations
    )
