"""Extension experiment: hardware-thread priorities under SMT contention.

The paper's introduction credits POWER5+ with "dynamically managed
levels of priority for hardware threads" — the other lever, besides the
SMT level itself, for controlling intra-core resource allocation.  This
experiment shields a foreground thread from three background threads on
one saturated POWER7 core: as the foreground priority rises from 1 to
7, its share of the contended issue capacity grows geometrically while
total core throughput stays roughly conserved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.arch import power7
from repro.sim.fast_core import (
    CoreInput,
    MAX_PRIORITY,
    MIN_PRIORITY,
    NEUTRAL_PRIORITY,
    solve_core,
)
from repro.util.tables import format_table
from repro.workloads.synthetic import make_stream

#: A port-saturating integer stream — contention makes priority matter.
FOREGROUND = make_stream(loads=0.10, stores=0.05, branches=0.05, fx=0.75,
                         ilp=2.2, l1_mpki=1, l2_mpki=0.3, l3_mpki=0.05)
BACKGROUND = FOREGROUND


@dataclass(frozen=True)
class ShieldingResult:
    foreground_ipc: Dict[int, float]     # priority -> IPC
    core_ipc: Dict[int, float]
    solo_ipc: float

    def render(self) -> str:
        rows = [
            [prio, self.foreground_ipc[prio],
             self.foreground_ipc[prio] / self.solo_ipc,
             self.core_ipc[prio]]
            for prio in sorted(self.foreground_ipc)
        ]
        return format_table(
            ["foreground priority", "foreground IPC", "fraction of solo", "core IPC"],
            rows,
            title="Extension: priority shielding on one saturated POWER7 SMT4 core",
        )


def run() -> ShieldingResult:
    arch = power7()
    solo = solve_core(
        CoreInput(arch, 1, (FOREGROUND,), threads_per_chip=1)
    )
    foreground_ipc: Dict[int, float] = {}
    core_ipc: Dict[int, float] = {}
    for prio in range(MIN_PRIORITY + 1, MAX_PRIORITY + 1):
        out = solve_core(
            CoreInput(
                arch, 4,
                (FOREGROUND, BACKGROUND, BACKGROUND, BACKGROUND),
                threads_per_chip=4,
                priorities=(prio, NEUTRAL_PRIORITY, NEUTRAL_PRIORITY, NEUTRAL_PRIORITY),
            )
        )
        foreground_ipc[prio] = float(out.ipc[0])
        core_ipc[prio] = out.core_ipc
    return ShieldingResult(
        foreground_ipc=foreground_ipc,
        core_ipc=core_ipc,
        solo_ipc=float(solo.ipc[0]),
    )
