"""Extension experiment: metric accuracy vs system size.

§IV-C observes the metric "is less accurate at 16 cores than at 8
cores" and §VII lists improving its scalability "when applied to a much
larger number of cores" as future work.  This experiment extends the
§IV-C sweep to four chips (32 cores, 128 threads at SMT4) and tracks
prediction accuracy and the SMT1-preferring population.

Model caveat: the synchronization laws saturate (a contended lock's
wait fraction approaches an asymptote rather than growing without
bound), so between 64 and 128 threads several *barrier/overhead*-bound
benchmarks stop degrading further and drift back above 1.0; the
SMT1-preferring population peaks at two chips.  Lock-throughput-capped
workloads (SSCA2, SPECjbb-contention) keep their degradation.  The
accuracy trend — the paper's actual claim — is monotone regardless.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.runner import ScatterResult, scatter_from_runs
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED
from repro.util.tables import format_table

CHIP_COUNTS: Tuple[int, ...] = (1, 2, 4)


@dataclass(frozen=True)
class ScalingResult:
    per_chips: Dict[int, ScatterResult]

    def success_rates(self) -> Dict[int, float]:
        return {c: r.success().success_rate for c, r in self.per_chips.items()}

    def smt1_preferrers(self) -> Dict[int, int]:
        return {
            c: sum(1 for p in r.points if p.speedup < 1.0)
            for c, r in self.per_chips.items()
        }

    def render(self) -> str:
        rates = self.success_rates()
        losers = self.smt1_preferrers()
        rows = [
            [chips, chips * 8, chips * 32, rates[chips], losers[chips]]
            for chips in sorted(self.per_chips)
        ]
        return format_table(
            ["chips", "cores", "threads @SMT4", "fitted success rate",
             "benchmarks preferring SMT1"],
            rows,
            title="Extension: SMTsm accuracy vs system size (SMT4/SMT1)",
        )


def run(seed: int = DEFAULT_SEED) -> ScalingResult:
    per_chips: Dict[int, ScatterResult] = {}
    for chips in CHIP_COUNTS:
        runs = run_catalog("p7", n_chips=chips, seed=seed)
        per_chips[chips] = scatter_from_runs(
            runs,
            title=f"SMT4/SMT1 vs SMTsm@SMT4, {chips} chip(s)",
            measure_level=4,
            high_level=4,
            low_level=1,
        )
    return ScalingResult(per_chips=per_chips)
