"""Fig. 2: SMT4/SMT1 speedup against four conventional metrics.

The paper plots the 27 POWER7 benchmarks' speedups against L1 MPKI,
CPI, branch mispredictions per kilo-instruction and the fraction of
VSU (floating-point/vector) instructions, and observes "there is no
correlation between any of the four metrics and the SMT speedup" —
the motivation for a purpose-built metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.correlation import pearson, spearman
from repro.core.baselines import CounterPredictor, NAIVE_METRICS, naive_metric_value
from repro.core.predictor import Observation
from repro.experiments.runner import CatalogRuns
from repro.experiments.runner import run_catalog
from repro.experiments.systems import DEFAULT_SEED
from repro.sim.results import speedup
from repro.util.tables import format_series, format_table

#: The level at which the conventional counters are read.  The paper
#: characterizes the applications at the baseline configuration; reading
#: the counters at SMT4 would smuggle in the very contention effects the
#: SMTsm measures.
MEASURE_LEVEL = 1


@dataclass(frozen=True)
class NaiveMetricsResult:
    """Four (metric value, speedup) series plus their correlations.

    ``fitted_accuracies`` gives each conventional counter its best
    shot: an oriented threshold fitted on the same data (the same
    machinery SMTsm's threshold uses), so "no correlation" is backed by
    a decision-quality number, not just a Pearson r.
    """

    series: Dict[str, Dict[str, Tuple[float, float]]]  # metric -> name -> (x, speedup)
    correlations: Dict[str, Dict[str, float]]
    fitted_accuracies: Dict[str, float]
    smtsm_accuracy: float

    def render(self) -> str:
        blocks: List[str] = []
        for metric in NAIVE_METRICS:
            blocks.append(
                format_series(
                    f"Fig. 2 ({metric}) vs SMT4/SMT1 speedup",
                    self.series[metric],
                    xlabel=metric,
                    ylabel="speedup",
                )
            )
        rows = [
            [m, self.correlations[m]["pearson"], self.correlations[m]["spearman"],
             self.fitted_accuracies[m]]
            for m in NAIVE_METRICS
        ]
        rows.append(["SMTsm (for reference)", None, None, self.smtsm_accuracy])
        blocks.append(
            format_table(
                ["metric", "pearson r", "spearman rho", "best fitted accuracy"],
                rows,
                title="correlation and decision quality vs SMT4/SMT1 speedup",
            )
        )
        return "\n\n".join(blocks)


def run(seed: int = DEFAULT_SEED, runs: CatalogRuns = None) -> NaiveMetricsResult:
    if runs is None:
        runs = run_catalog("p7", seed=seed)
    series: Dict[str, Dict[str, Tuple[float, float]]] = {m: {} for m in NAIVE_METRICS}
    for name, by_level in runs.runs.items():
        sample = by_level[MEASURE_LEVEL].counter_sample()
        s41 = speedup(by_level[4], by_level[1])
        for metric in NAIVE_METRICS:
            series[metric][name] = (naive_metric_value(sample, metric), s41)
    correlations = {}
    fitted = {}
    for metric in NAIVE_METRICS:
        xs = [v[0] for v in series[metric].values()]
        ys = [v[1] for v in series[metric].values()]
        correlations[metric] = {"pearson": pearson(xs, ys), "spearman": spearman(xs, ys)}
        obs = [Observation(name, x, y)
               for name, (x, y) in series[metric].items()]
        predictor = CounterPredictor.fit(metric, obs)
        fitted[metric] = predictor.evaluate(obs).success_rate

    from repro.experiments import fig06_smt4v1_at4

    scatter = fig06_smt4v1_at4.run(runs=runs)
    smtsm_accuracy = scatter.success().success_rate
    return NaiveMetricsResult(
        series=series,
        correlations=correlations,
        fitted_accuracies=fitted,
        smtsm_accuracy=smtsm_accuracy,
    )
