"""Experiment harness: one module per paper table/figure.

Every experiment follows §IV's protocol — the number of software
threads equals the number of hardware contexts at each SMT level — and
returns a result object that can render the same rows/series the paper
plots.  The benchmark suite (``benchmarks/``) drives these modules and
asserts the paper's qualitative shapes.
"""

from repro.experiments.runner import (
    CatalogRuns,
    ScatterPoint,
    ScatterResult,
    run_catalog,
    scatter_from_runs,
)
from repro.experiments import (
    armsmt_transfer,
    batch_scheduler,
    coschedule_symbiosis,
    hetero_biglittle,
    noise_ablation,
    fig01_motivation,
    fig02_naive_metrics,
    fig06_smt4v1_at4,
    fig07_instruction_mix,
    fig08_smt4v2_at4,
    fig09_smt2v1_at2,
    fig10_nehalem,
    fig11_at_smt1_p7,
    fig12_at_smt1_nehalem,
    fig13_two_chip_41,
    fig14_two_chip_42,
    fig15_two_chip_21,
    fig16_gini,
    fig17_ppi,
    offline_vs_online,
    online_optimizer,
    priority_shielding,
    related_mathis_power5,
    scaling_cores,
    table1,
    threshold_transfer,
)

__all__ = [
    "CatalogRuns",
    "ScatterPoint",
    "ScatterResult",
    "run_catalog",
    "scatter_from_runs",
    "fig01_motivation",
    "fig02_naive_metrics",
    "fig06_smt4v1_at4",
    "fig07_instruction_mix",
    "fig08_smt4v2_at4",
    "fig09_smt2v1_at2",
    "fig10_nehalem",
    "fig11_at_smt1_p7",
    "fig12_at_smt1_nehalem",
    "fig13_two_chip_41",
    "fig14_two_chip_42",
    "fig15_two_chip_21",
    "fig16_gini",
    "fig17_ppi",
    "armsmt_transfer",
    "hetero_biglittle",
    "noise_ablation",
    "online_optimizer",
    "offline_vs_online",
    "batch_scheduler",
    "coschedule_symbiosis",
    "priority_shielding",
    "related_mathis_power5",
    "scaling_cores",
    "threshold_transfer",
    "table1",
]
