"""The stable public facade of the reproduction.

External callers — including the :mod:`repro.serve` prediction service,
whose handlers import *only* this module — get three operations:

* :func:`predict` — "which SMT level should workload W run at on
  architecture A?": simulate one measurement run, evaluate SMTsm
  (Eq. 1) and apply the paper's fitted threshold predictor;
* :func:`sweep` — run a benchmark-catalog slice through the unified
  :func:`repro.experiments.runner.run_catalog` engine;
* :func:`score_counters` — evaluate SMTsm on raw counter readings
  (events + wall/CPU times) without any simulation at all;
* :func:`simulate_fleet` — run the :mod:`repro.fleet` simulated
  datacenter (N chips, a seeded job trace, a placement policy) and
  return its aggregate :class:`~repro.fleet.FleetResult`.

A :class:`Session` pins the shared context (system, seed, work budget,
run cache, threshold) and amortizes it across calls: the fitted
per-architecture predictor and the underlying run cache are reused, and
:meth:`Session.predict_many` pushes any number of concurrent queries
through one columnar :class:`repro.sim.table.ScenarioTable` solve —
the entry point the service's micro-batcher dispatches to.  Sessions
built with ``surrogate=True`` route that batch through the calibrated
:mod:`repro.sim.surrogate` fast path instead, falling back to the full
solver for out-of-calibration rows.

Everything here is re-exported at top level (``from repro import
Session, predict, ...``); ``docs/api.md`` documents this surface and
``scripts/check_docs.py`` enforces the documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.metric import SmtsmResult, smtsm, smtsm_from_run
from repro.core.predictor import Observation, SmtPredictor
from repro.counters.pmu import CounterSample
from repro.experiments.runner import (
    CatalogRuns,
    Strategy,
    resolve_system,
    run_catalog,
)
from repro.fleet import (
    FleetConfig,
    FleetResult,
    Policy,
    list_policies,
)
from repro.fleet import simulate_fleet as _simulate_fleet
from repro.obs import get_tracer
from repro.sim.engine import DEFAULT_WORK, RunSpec
from repro.sim.results import RunResult, speedup
from repro.sim.runcache import RunCache, cache_enabled_by_default
from repro.simos.system import SystemSpec
from repro.workloads import all_workloads, get_workload
from repro.workloads.spec import WorkloadSpec

__all__ = [
    "Session",
    "Prediction",
    "PredictQuery",
    "predict",
    "predict_many",
    "sweep",
    "sweep_summary",
    "score_counters",
    "get_session",
    "FleetConfig",
    "FleetResult",
    "Policy",
    "Strategy",
    "list_policies",
    "simulate_fleet",
]

DEFAULT_SEED = 11


@dataclass(frozen=True)
class PredictQuery:
    """One prediction request within a session's batch.

    ``level`` is the *measurement* level SMTsm is evaluated at (default:
    the architecture's maximum); ``seed`` overrides the session seed so
    one batch can mix independent repetitions of the same workload.
    """

    workload: Union[str, WorkloadSpec]
    level: Optional[int] = None
    seed: Optional[int] = None


@dataclass(frozen=True)
class Prediction:
    """The answer to one :func:`predict` query, JSON-ready via :meth:`payload`."""

    workload: str
    arch: str
    n_chips: int
    measure_level: int
    smtsm: float
    mix_deviation: float
    dispatch_held: float
    scalability_ratio: float
    recommended_level: int
    high_level: int
    low_level: int
    threshold: float
    wall_time_s: float
    instructions_per_second: float
    seed: int

    @property
    def prefers_higher(self) -> bool:
        return self.recommended_level == self.high_level

    def payload(self) -> Dict[str, Any]:
        """The prediction as a plain-JSON dict (the wire format)."""
        return {
            "workload": self.workload,
            "arch": self.arch,
            "n_chips": self.n_chips,
            "measure_level": self.measure_level,
            "smtsm": self.smtsm,
            "factors": {
                "mix_deviation": self.mix_deviation,
                "dispatch_held": self.dispatch_held,
                "scalability_ratio": self.scalability_ratio,
            },
            "recommended_level": self.recommended_level,
            "high_level": self.high_level,
            "low_level": self.low_level,
            "threshold": self.threshold,
            "wall_time_s": self.wall_time_s,
            "instructions_per_second": self.instructions_per_second,
            "seed": self.seed,
        }


class Session:
    """Pinned context for a sequence of facade calls.

    Holds the resolved system, default seed and work budget, the
    persistent run cache handle, and the lazily fitted per-level-pair
    threshold predictors.  A session is cheap to create; the first
    ``predict`` on a fresh architecture triggers one batched catalog
    sweep to fit the threshold (cached in-memory and, by default, in
    the on-disk run cache) unless an explicit ``threshold`` pins it.
    """

    def __init__(
        self,
        arch: Union[str, SystemSpec] = "p7",
        *,
        n_chips: Optional[int] = None,
        seed: int = DEFAULT_SEED,
        work: float = DEFAULT_WORK,
        use_cache: Optional[bool] = None,
        threshold: Optional[float] = None,
        threshold_method: str = "gini",
        surrogate: bool = False,
    ):
        self.system = resolve_system(arch, n_chips)
        self.seed = seed
        self.work = work
        if use_cache is None:
            use_cache = cache_enabled_by_default()
        self.use_cache = bool(use_cache)
        self._cache = RunCache() if self.use_cache else None
        self.threshold = threshold
        self.threshold_method = threshold_method
        self.surrogate = bool(surrogate)
        self._predictors: Dict[Tuple[int, int, int], SmtPredictor] = {}
        self._fit_runs: Optional[CatalogRuns] = None

    # -- internals -----------------------------------------------------

    def _workload(self, workload: Union[str, WorkloadSpec]) -> WorkloadSpec:
        if isinstance(workload, WorkloadSpec):
            return workload
        return get_workload(workload)

    def _level_pair(self) -> Tuple[int, int]:
        levels = sorted(self.system.arch.smt_levels)
        return levels[-1], levels[0]

    def predictor(
        self,
        *,
        measure_level: Optional[int] = None,
        high_level: Optional[int] = None,
        low_level: Optional[int] = None,
    ) -> SmtPredictor:
        """The threshold predictor for one (measure, high, low) triple.

        A fixed session ``threshold`` short-circuits fitting; otherwise
        the predictor is fitted (once per triple) on the architecture's
        default benchmark catalog, exactly the way the paper fits its
        per-machine thresholds.
        """
        default_high, default_low = self._level_pair()
        high = high_level if high_level is not None else default_high
        low = low_level if low_level is not None else default_low
        measure = measure_level if measure_level is not None else high
        if self.threshold is not None:
            return SmtPredictor(
                threshold=self.threshold, high_level=high, low_level=low,
                method="fixed",
            )
        key = (measure, high, low)
        fitted = self._predictors.get(key)
        if fitted is None:
            if self._fit_runs is None:
                self._fit_runs = run_catalog(
                    self.system, seed=self.seed, work=self.work,
                    cache=self._cache, use_cache=self.use_cache,
                )
            runs = self._fit_runs
            observations = []
            for name in runs.complete_names((measure, high, low)):
                by_level = runs.runs[name]
                observations.append(Observation(
                    name=name,
                    metric=smtsm_from_run(by_level[measure]).value,
                    speedup=speedup(by_level[high], by_level[low]),
                ))
            fitted = SmtPredictor.fit(
                observations, high_level=high, low_level=low,
                method=self.threshold_method,
            )
            self._predictors[key] = fitted
        return fitted

    def _simulate(self, specs: Sequence[RunSpec]) -> List[RunResult]:
        """Cache-aware batched simulation of arbitrary run specs.

        The missing-spec batch is lowered into one columnar
        :class:`~repro.sim.table.ScenarioTable` solve; in surrogate mode
        the calibrated fast path answers in-bound rows directly and only
        out-of-calibration rows fall back to the full solver.  Surrogate
        answers are approximate, so they are never written back to the
        exact run cache.
        """
        results: List[Optional[RunResult]] = [None] * len(specs)
        missing: List[int] = []
        if self._cache is not None:
            for i, spec in enumerate(specs):
                results[i] = self._cache.get(spec)
                if results[i] is None:
                    missing.append(i)
        else:
            missing = list(range(len(specs)))
        if missing:
            todo = [specs[i] for i in missing]
            if self.surrogate:
                from repro.sim.surrogate import simulate_many_surrogate
                fresh, hits = simulate_many_surrogate(todo)
            else:
                from repro.sim.table import simulate_many_columnar
                fresh = simulate_many_columnar(todo)
                hits = [False] * len(todo)
            for pos, (i, result) in enumerate(zip(missing, fresh)):
                results[i] = result
                if self._cache is not None and not hits[pos]:
                    self._cache.put(specs[i], result)
        return results  # type: ignore[return-value]

    # -- the facade operations ----------------------------------------

    def predict(
        self,
        workload: Union[str, WorkloadSpec],
        *,
        level: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> Prediction:
        """Predict the best SMT level for one workload (one-element batch)."""
        return self.predict_many([PredictQuery(workload, level, seed)])[0]

    def predict_many(
        self, queries: Sequence[Union[PredictQuery, Mapping[str, Any]]]
    ) -> List[Prediction]:
        """Answer many prediction queries through one vectorized batch.

        This is the amortization point the serving layer's micro-batcher
        dispatches to: all measurement runs are lowered into one columnar
        :class:`~repro.sim.table.ScenarioTable` solve (cache hits
        skipped), then scored and thresholded individually.
        """
        parsed: List[PredictQuery] = [
            q if isinstance(q, PredictQuery) else PredictQuery(**q)
            for q in queries
        ]
        high, low = self._level_pair()
        tracer = get_tracer()
        with tracer.span("api.predict_many", queries=len(parsed)):
            specs = []
            for q in parsed:
                spec = self._workload(q.workload)
                measure = q.level if q.level is not None else high
                specs.append(RunSpec(
                    system=self.system,
                    smt_level=measure,
                    stream=spec.stream,
                    sync=spec.sync,
                    useful_instructions=self.work,
                    seed=q.seed if q.seed is not None else self.seed,
                ))
            results = self._simulate(specs)
            predictions = []
            for q, run_spec, result in zip(parsed, specs, results):
                metric = smtsm_from_run(result)
                predictor = self.predictor(
                    measure_level=run_spec.smt_level,
                    high_level=high, low_level=low,
                )
                predictions.append(Prediction(
                    workload=self._workload(q.workload).name,
                    arch=self.system.arch.name,
                    n_chips=self.system.n_chips,
                    measure_level=run_spec.smt_level,
                    smtsm=metric.value,
                    mix_deviation=metric.mix_deviation,
                    dispatch_held=metric.dispatch_held,
                    scalability_ratio=metric.scalability_ratio,
                    recommended_level=predictor.recommend(metric.value),
                    high_level=high,
                    low_level=low,
                    threshold=predictor.threshold,
                    wall_time_s=result.wall_time_s,
                    instructions_per_second=result.performance,
                    seed=run_spec.seed,
                ))
        return predictions

    def sweep(
        self,
        names: Optional[Sequence[str]] = None,
        levels: Optional[Sequence[int]] = None,
        *,
        strategy: str = "batched",
        jobs: Optional[int] = None,
    ) -> CatalogRuns:
        """Run a catalog slice (all workloads by default) on this system."""
        catalog = None
        if names is not None:
            specs = all_workloads()
            catalog = {name: specs[name] for name in names}
        return run_catalog(
            self.system, catalog, levels,
            strategy=strategy, jobs=jobs, seed=self.seed, work=self.work,
            cache=self._cache, use_cache=self.use_cache,
        )

    def sweep_summary(
        self,
        names: Optional[Sequence[str]] = None,
        levels: Optional[Sequence[int]] = None,
        *,
        strategy: str = "batched",
    ) -> Dict[str, Any]:
        """A :meth:`sweep` rendered as one plain-JSON dict (the wire format)."""
        runs = self.sweep(names, levels, strategy=strategy)
        workloads: Dict[str, Any] = {}
        for name, by_level in runs.runs.items():
            workloads[name] = {
                str(level): {
                    "wall_time_s": result.wall_time_s,
                    "instructions_per_second": result.performance,
                    "smtsm": smtsm_from_run(result).value,
                }
                for level, result in sorted(by_level.items())
            }
        return {
            "arch": self.system.arch.name,
            "n_chips": self.system.n_chips,
            "seed": runs.seed,
            "levels": [int(level) for level in runs.levels()],
            "workloads": workloads,
            "failures": dict(runs.failures),
        }

    def score_counters(
        self,
        events: Mapping[str, float],
        *,
        smt_level: int,
        wall_time_s: float,
        avg_thread_cpu_s: float,
        n_software_threads: int,
    ) -> SmtsmResult:
        """Evaluate SMTsm on raw counter readings (no simulation).

        ``events`` must contain the architecture's metric events plus
        ``CYCLES``/``INSTRUCTIONS``/``DISP_HELD_RES`` — the same
        contract as :class:`repro.counters.CounterSample`.
        """
        sample = CounterSample(
            arch=self.system.arch,
            smt_level=smt_level,
            events=dict(events),
            wall_time_s=wall_time_s,
            avg_thread_cpu_s=avg_thread_cpu_s,
            n_software_threads=n_software_threads,
        )
        return smtsm(sample)


#: Default sessions shared by the module-level convenience functions,
#: keyed by the full session configuration.
_SESSIONS: Dict[Tuple, Session] = {}


def get_session(
    arch: Union[str, SystemSpec] = "p7",
    *,
    n_chips: Optional[int] = None,
    seed: int = DEFAULT_SEED,
    work: float = DEFAULT_WORK,
    use_cache: Optional[bool] = None,
    threshold: Optional[float] = None,
    threshold_method: str = "gini",
    surrogate: bool = False,
) -> Session:
    """A shared :class:`Session` for this configuration (created once)."""
    key = (
        arch if isinstance(arch, str) else (arch.arch.name, arch.n_chips),
        n_chips, seed, work, use_cache, threshold, threshold_method,
        surrogate,
    )
    session = _SESSIONS.get(key)
    if session is None:
        session = _SESSIONS[key] = Session(
            arch, n_chips=n_chips, seed=seed, work=work, use_cache=use_cache,
            threshold=threshold, threshold_method=threshold_method,
            surrogate=surrogate,
        )
    return session


def predict(
    workload: Union[str, WorkloadSpec],
    arch: Union[str, SystemSpec] = "p7",
    *,
    level: Optional[int] = None,
    **session_kwargs,
) -> Prediction:
    """Module-level :meth:`Session.predict` on a shared session."""
    return get_session(arch, **session_kwargs).predict(workload, level=level)


def predict_many(
    queries: Sequence[Union[PredictQuery, Mapping[str, Any]]],
    arch: Union[str, SystemSpec] = "p7",
    **session_kwargs,
) -> List[Prediction]:
    """Module-level :meth:`Session.predict_many` on a shared session."""
    return get_session(arch, **session_kwargs).predict_many(queries)


def sweep(
    arch: Union[str, SystemSpec] = "p7",
    names: Optional[Sequence[str]] = None,
    levels: Optional[Sequence[int]] = None,
    *,
    strategy: str = "batched",
    jobs: Optional[int] = None,
    **session_kwargs,
) -> CatalogRuns:
    """Module-level :meth:`Session.sweep` on a shared session."""
    return get_session(arch, **session_kwargs).sweep(
        names, levels, strategy=strategy, jobs=jobs
    )


def sweep_summary(
    arch: Union[str, SystemSpec] = "p7",
    names: Optional[Sequence[str]] = None,
    levels: Optional[Sequence[int]] = None,
    *,
    strategy: str = "batched",
    **session_kwargs,
) -> Dict[str, Any]:
    """Module-level :meth:`Session.sweep_summary` on a shared session."""
    return get_session(arch, **session_kwargs).sweep_summary(
        names, levels, strategy=strategy
    )


def score_counters(
    events: Mapping[str, float],
    arch: Union[str, SystemSpec] = "p7",
    *,
    smt_level: int,
    wall_time_s: float,
    avg_thread_cpu_s: float,
    n_software_threads: int,
    **session_kwargs,
) -> SmtsmResult:
    """Module-level :meth:`Session.score_counters` on a shared session."""
    return get_session(arch, **session_kwargs).score_counters(
        events,
        smt_level=smt_level,
        wall_time_s=wall_time_s,
        avg_thread_cpu_s=avg_thread_cpu_s,
        n_software_threads=n_software_threads,
    )


def simulate_fleet(
    config: Optional[FleetConfig] = None, **overrides
) -> FleetResult:
    """Run the :mod:`repro.fleet` simulated datacenter (docs/fleet.md).

    Accepts a full :class:`FleetConfig`, keyword overrides over one, or
    keywords alone::

        result = simulate_fleet(chips=24, jobs=4000, policy=Policy.SMTSM)
        result.throughput_jobs_s, result.latency_p95_s

    ``policy`` takes a :class:`Policy` member or any registered policy
    name (:func:`list_policies`); ``strategy`` must be a batch-capable
    :class:`Strategy` (``columnar`` or ``surrogate``) — the fleet's
    per-(arch, workload, level) reference space is solved as one
    mega-batch before the event loop starts.
    """
    return _simulate_fleet(config, **overrides)
