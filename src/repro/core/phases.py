"""Online metric tracking across execution phases.

The metric "can be measured periodically and hence allows adaptively
choosing the optimal SMT level for a workload as it goes through
different phases" (§I).  :class:`MetricTracker` smooths the noisy
per-interval SMTsm readings with an exponentially weighted moving
average and flags phase changes when a fresh reading departs from the
smoothed estimate by a relative margin — the signal the online
optimizer uses to re-evaluate promptly instead of waiting out its
normal re-probe period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.metric import SmtsmResult
from repro.util.validation import check_fraction, check_positive


class MetricTracker:
    """EWMA smoothing + phase-change detection over SMTsm readings."""

    def __init__(self, *, alpha: float = 0.4, phase_change_rel: float = 0.6,
                 min_samples: int = 2):
        self.alpha = check_fraction("alpha", alpha)
        if alpha == 0.0:
            raise ValueError("alpha must be > 0 (new samples must have weight)")
        self.phase_change_rel = check_positive("phase_change_rel", phase_change_rel)
        if min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {min_samples}")
        self.min_samples = int(min_samples)
        self._estimate: Optional[float] = None
        self._n = 0
        self.history: List[float] = []

    @property
    def estimate(self) -> Optional[float]:
        """Current smoothed SMTsm value (None before any sample)."""
        return self._estimate

    @property
    def n_samples(self) -> int:
        return self._n

    def update(self, reading: SmtsmResult) -> bool:
        """Fold in a reading; returns True if a phase change is detected.

        A phase change resets the EWMA so the tracker re-converges at
        the new level instead of dragging the old phase's history along.
        """
        value = float(reading)
        self.history.append(value)
        self._n += 1
        if self._estimate is None:
            self._estimate = value
            return False
        changed = False
        if self._n > self.min_samples:
            base = max(self._estimate, 1e-6)
            if abs(value - self._estimate) / base > self.phase_change_rel:
                changed = True
        if changed:
            self._estimate = value
        else:
            self._estimate = self.alpha * value + (1 - self.alpha) * self._estimate
        return changed

    def reset(self) -> None:
        self._estimate = None
        self._n = 0
