"""Noise-hardened online SMTsm estimation and SMT-level control.

:func:`repro.core.metric.smtsm` assumes a perfect sample: every event
present, every count honest.  A production controller cannot — counter
groups drop out of the multiplex rotation, single counters glitch, and
phase boundaries spike the dispatch-held factor.  This module is the
defensive layer:

* :func:`robust_smtsm` never raises on an incomplete sample.  When
  metric-space events are missing it substitutes their *ideal* share
  (the zero-deviation assumption — conservative, it never manufactures
  deviation that was not observed) and reports a ``confidence`` equal
  to the observed fraction of the ideal mass.  With nothing missing it
  reproduces :func:`~repro.core.metric.smtsm` exactly.
* :class:`HardenedController` turns a stream of noisy samples into
  stable SMT-level decisions: confidence-weighted EWMA smoothing,
  outlier rejection, a hysteresis band around each predictor threshold,
  and a switch cooldown (debounce) so one glitched interval can never
  thrash the SMT level.  Below the maximum level the metric is blind
  (§IV-B), so the controller counts blind intervals and probes back up.
* :func:`naive_decision` is the strawman the robustness ablation
  compares against: trust one raw reading, crash on missing events.
* :func:`drive_online` wires an app (optionally fault-injected), a
  :class:`~repro.counters.perfstat.PerfStat` sampler and a controller
  into a closed loop that actually switches the app's SMT level.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.metric import smtsm
from repro.core.predictor import SmtPredictor
from repro.counters.events import CLASS_COUNT_EVENTS, port_issue_event
from repro.counters.pmu import CounterSample
from repro.obs import get_tracer
from repro.util.validation import check_fraction, check_positive


@dataclass(frozen=True)
class RobustSmtsm:
    """A degradation-aware SMTsm estimate.

    ``value`` is ``None`` only when *no* metric-space event survived
    (confidence 0); otherwise it is the best available estimate and
    ``confidence`` in ``(0, 1]`` is the fraction of the ideal-vector
    mass actually observed.  ``degraded`` flags any fallback at all.
    """

    value: Optional[float]
    confidence: float
    degraded: bool
    missing_events: Tuple[str, ...]
    smt_level: int
    arch_name: str


def _metric_event_names(arch) -> Tuple[str, ...]:
    if arch.metric_space == "class":
        return CLASS_COUNT_EVENTS
    return tuple(port_issue_event(p) for p in arch.topology.port_names)


def robust_smtsm(sample: CounterSample) -> RobustSmtsm:
    """Evaluate SMTsm, degrading gracefully on missing events."""
    arch = sample.arch
    names = _metric_event_names(arch)
    missing = tuple(n for n in names if n not in sample.events)
    if not missing:
        full = smtsm(sample)
        return RobustSmtsm(
            value=full.value,
            confidence=1.0,
            degraded=False,
            missing_events=(),
            smt_level=sample.smt_level,
            arch_name=arch.name,
        )

    ideal = arch.ideal_vector()
    present = [i for i, n in enumerate(names) if n not in missing]
    observed_mass = float(sum(ideal[i] for i in present))
    observed_total = float(sum(sample.events[names[i]] for i in present))
    if observed_mass <= 0.0 or observed_total <= 0.0:
        return RobustSmtsm(
            value=None,
            confidence=0.0,
            degraded=True,
            missing_events=missing,
            smt_level=sample.smt_level,
            arch_name=arch.name,
        )

    # Assume the unobserved classes sat exactly at their ideal share:
    # estimate the grand total from the observed slice, then fill the
    # holes with the ideal fractions themselves (zero contribution to
    # the deviation term).
    total_est = observed_total / observed_mass
    deviation_sq = 0.0
    for i in present:
        frac = sample.events[names[i]] / total_est
        deviation_sq += (frac - float(ideal[i])) ** 2
    deviation = math.sqrt(deviation_sq)
    value = deviation * sample.dispatch_held_fraction * sample.scalability_ratio
    return RobustSmtsm(
        value=value,
        confidence=observed_mass,
        degraded=True,
        missing_events=missing,
        smt_level=sample.smt_level,
        arch_name=arch.name,
    )


@dataclass(frozen=True)
class HardenedConfig:
    """Controller knobs (see ``docs/robustness.md`` for tuning guidance).

    ``ewma_alpha`` — weight of a fresh full-confidence reading; degraded
    readings are folded in with ``alpha * confidence``.
    ``hysteresis_rel`` — relative dead band around each predictor
    threshold: leaving the max level requires the smoothed metric to
    clear ``threshold * (1 + band)``, returning requires it to fall
    under ``threshold * (1 - band)``.
    ``cooldown_intervals`` — decision intervals after a switch during
    which no further switch is allowed (debounce).
    ``min_confidence`` — readings below this confidence update the
    estimate but never trigger a switch.
    ``warmup_samples`` — observations required before the first switch.
    ``outlier_rel`` — a reading farther than this factor from the
    smoothed estimate (either direction) is folded in at a tenth of its
    weight; heavy-tailed glitches die here instead of in the EWMA.
    ``probe_every`` — blind (below-max) intervals tolerated before the
    controller schedules a probe back to the max level.
    """

    ewma_alpha: float = 0.3
    hysteresis_rel: float = 0.15
    cooldown_intervals: int = 3
    min_confidence: float = 0.5
    warmup_samples: int = 3
    outlier_rel: float = 3.0
    probe_every: int = 6

    def __post_init__(self):
        check_fraction("ewma_alpha", self.ewma_alpha)
        if self.ewma_alpha == 0.0:
            raise ValueError("ewma_alpha must be > 0 (new samples must count)")
        check_positive("hysteresis_rel", self.hysteresis_rel)
        if self.hysteresis_rel >= 1.0:
            raise ValueError(
                f"hysteresis_rel must be < 1, got {self.hysteresis_rel}"
            )
        if self.cooldown_intervals < 0:
            raise ValueError(
                f"cooldown_intervals must be >= 0, got {self.cooldown_intervals}"
            )
        check_fraction("min_confidence", self.min_confidence)
        if self.warmup_samples < 1:
            raise ValueError(
                f"warmup_samples must be >= 1, got {self.warmup_samples}"
            )
        if self.outlier_rel <= 1.0:
            raise ValueError(f"outlier_rel must be > 1, got {self.outlier_rel}")
        if self.probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {self.probe_every}")


@dataclass(frozen=True)
class ControllerDecision:
    """The controller's state after folding in one sample."""

    index: int
    level: int
    raw: Optional[float]
    smoothed: Optional[float]
    confidence: float
    degraded: bool
    switched_to: Optional[int]


class HardenedController:
    """Noise-tolerant online SMT-level selection.

    ``predictors`` maps each lower SMT level to its fitted
    :class:`~repro.core.predictor.SmtPredictor` against the maximum
    level, exactly as :class:`~repro.core.optimizer.OptimizerConfig`
    does; the controller starts at (and probes back to) the max level.
    """

    def __init__(
        self,
        predictors: Dict[int, SmtPredictor],
        config: Optional[HardenedConfig] = None,
    ):
        if not predictors:
            raise ValueError("need at least one lower-level predictor")
        highs = {p.high_level for p in predictors.values()}
        if len(highs) != 1:
            raise ValueError(f"predictors disagree on the max level: {highs}")
        self.max_level = highs.pop()
        for low, pred in predictors.items():
            if pred.low_level != low or low >= self.max_level:
                raise ValueError(
                    f"predictor keyed {low} covers SMT{pred.high_level}v"
                    f"SMT{pred.low_level}; key must equal its low level "
                    f"and sit below SMT{self.max_level}"
                )
        self.predictors = dict(predictors)
        self.config = config if config is not None else HardenedConfig()
        self.level = self.max_level
        self.smoothed: Optional[float] = None
        self._n = 0
        self._cooldown = 0
        self._blind = 0
        self.n_switches = 0

    # -- decision core -------------------------------------------------
    def _target(self, metric: float) -> int:
        """Hysteresis-banded version of the optimizer's level choice."""
        band = self.config.hysteresis_rel
        for low in sorted(self.predictors):
            threshold = self.predictors[low].threshold
            # Staying put is favoured: the band a crossing must clear
            # depends on which side the controller currently sits on.
            edge = threshold * (1.0 + band) if self.level == self.max_level \
                else threshold * (1.0 - band)
            if metric > edge:
                return low
        return self.max_level

    def observe(self, sample: CounterSample) -> ControllerDecision:
        """Fold one interval in; maybe decide to switch levels."""
        tracer = get_tracer()
        cfg = self.config
        index = self._n
        self._n += 1
        switched: Optional[int] = None

        if sample.smt_level != self.max_level:
            # §IV-B: the metric is blind below the max level.  Count the
            # interval and schedule a probe back up instead of updating.
            self._blind += 1
            tracer.add("controller.blind")
            if self._cooldown > 0:
                self._cooldown -= 1
            elif self._blind >= cfg.probe_every:
                switched = self._switch(self.max_level)
                tracer.add("controller.probes")
            return ControllerDecision(
                index=index, level=self.level, raw=None,
                smoothed=self.smoothed, confidence=0.0, degraded=False,
                switched_to=switched,
            )
        self._blind = 0

        estimate = robust_smtsm(sample)
        if estimate.degraded:
            tracer.add("controller.degraded")
        if estimate.value is None:
            # Nothing measurable this interval; hold everything.
            tracer.add("controller.skipped")
            if self._cooldown > 0:
                self._cooldown -= 1
            return ControllerDecision(
                index=index, level=self.level, raw=None,
                smoothed=self.smoothed, confidence=0.0, degraded=True,
                switched_to=None,
            )

        raw = estimate.value
        weight = cfg.ewma_alpha * estimate.confidence
        if self.smoothed is None:
            self.smoothed = raw
        else:
            lo, hi = self.smoothed / cfg.outlier_rel, self.smoothed * cfg.outlier_rel
            if raw < lo or raw > hi:
                tracer.add("controller.outliers")
                weight *= 0.1
            self.smoothed = weight * raw + (1.0 - weight) * self.smoothed

        if self._cooldown > 0:
            self._cooldown -= 1
            tracer.add("controller.held_cooldown")
        elif self._n >= cfg.warmup_samples and estimate.confidence >= cfg.min_confidence:
            target = self._target(self.smoothed)
            if target != self.level:
                switched = self._switch(target)
        elif estimate.confidence < cfg.min_confidence:
            tracer.add("controller.held_confidence")

        return ControllerDecision(
            index=index, level=self.level, raw=raw, smoothed=self.smoothed,
            confidence=estimate.confidence, degraded=estimate.degraded,
            switched_to=switched,
        )

    def _switch(self, target: int) -> int:
        self.level = target
        self._cooldown = self.config.cooldown_intervals
        self.n_switches += 1
        get_tracer().add("controller.switches")
        return target

    def reset(self) -> None:
        """Forget the estimate (e.g. after an external phase signal)."""
        self.smoothed = None
        self._n = 0
        self._blind = 0
        self._cooldown = 0


def naive_decision(
    sample: CounterSample, predictors: Dict[int, SmtPredictor]
) -> Optional[int]:
    """The unhardened baseline: one raw reading, no smoothing, no mercy.

    Returns the chosen SMT level, or ``None`` when the raw metric
    cannot be evaluated at all (missing events) — the situation in
    which a naive controller simply crashes.
    """
    try:
        metric = smtsm(sample).value
    except (KeyError, ValueError):
        return None
    max_level = next(iter(predictors.values())).high_level
    for low in sorted(predictors):
        if not predictors[low].predicts_higher(metric):
            return low
    return max_level


def drive_online(
    app,
    perf,
    controller: HardenedController,
    n_intervals: int,
) -> List[ControllerDecision]:
    """Closed loop: sample ``app`` through ``perf``, let ``controller``
    decide, and apply its switches to the app (when it supports
    ``switch_level``).  Returns the per-interval decisions."""
    if n_intervals < 1:
        raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
    decisions: List[ControllerDecision] = []
    can_switch = hasattr(app, "switch_level")
    for _ in range(n_intervals):
        reading = perf.sample(app)
        decision = controller.observe(reading.sample)
        if decision.switched_to is not None and can_switch:
            app.switch_level(decision.switched_to)
        decisions.append(decision)
    return decisions
