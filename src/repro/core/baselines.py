"""Baseline predictors the paper compares against.

Fig. 2 shows that no single conventional counter — L1 misses, CPI,
branch mispredictions, or the floating-point fraction — correlates with
SMT speedup.  :class:`CounterPredictor` gives those metrics their best
shot: it fits an oriented threshold (either direction) by the same Gini
machinery SMTsm uses, so the comparison is apples-to-apples.

§I also dismisses the *online IPC probing* alternative ("vary the SMT
level online and observe changes in IPC"): not all systems can switch
online, and IPC over-credits spinning.  :class:`IpcProbePredictor`
implements it, including the failure mode: a spin-heavy workload's raw
IPC rises with more contexts even as useful performance collapses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.core.predictor import Observation, PredictorReport, evaluate_predictor
from repro.core.thresholds import gini_impurity, _candidate_separators, _validate
from repro.counters.pmu import CounterSample
from repro.sim.results import RunResult

#: The four Fig. 2 axes.
NAIVE_METRICS: Tuple[str, ...] = ("l1_mpki", "cpi", "branch_mpki", "vs_fraction")


def naive_metric_value(sample: CounterSample, metric: str) -> float:
    """Extract one of the Fig. 2 conventional metrics from a sample."""
    if metric == "l1_mpki":
        return sample.l1_mpki
    if metric == "cpi":
        return sample.cpi
    if metric == "branch_mpki":
        return sample.branch_mpki
    if metric == "vs_fraction":
        return sample.vs_fraction
    raise ValueError(f"unknown naive metric {metric!r}; options: {NAIVE_METRICS}")


@dataclass(frozen=True)
class CounterPredictor:
    """A single-counter threshold predictor with fitted orientation.

    ``higher_below_threshold`` True means values below the threshold
    predict the higher SMT level (SMTsm's own orientation); False means
    the opposite.  Fitting tries both.
    """

    metric_name: str
    threshold: float
    higher_below_threshold: bool

    def predicts_higher(self, value: float) -> bool:
        below = value <= self.threshold
        return below if self.higher_below_threshold else not below

    @classmethod
    def fit(cls, metric_name: str, observations: Sequence[Observation]) -> "CounterPredictor":
        """Pick the (threshold, orientation) minimizing training error."""
        obs = list(observations)
        metrics = np.array([o.metric for o in obs])
        speedups = np.array([o.speedup for o in obs])
        _validate(metrics, speedups)
        labels = speedups >= 1.0
        best = None
        for threshold in _candidate_separators(metrics):
            below = metrics <= threshold
            for orientation in (True, False):
                predicted_higher = below if orientation else ~below
                errors = int(np.sum(predicted_higher != labels))
                key = (errors, gini_impurity(metrics, speedups, float(threshold)))
                if best is None or key < best[0]:
                    best = (key, float(threshold), orientation)
        _, threshold, orientation = best
        return cls(metric_name=metric_name, threshold=threshold,
                   higher_below_threshold=orientation)

    def evaluate(self, observations: Sequence[Observation]) -> PredictorReport:
        missed = [o.name for o in observations
                  if self.predicts_higher(o.metric) != o.prefers_higher]
        return PredictorReport(
            n_total=len(observations),
            n_correct=len(observations) - len(missed),
            mispredicted=tuple(missed),
            threshold=self.threshold,
        )


@dataclass(frozen=True)
class IpcProbePredictor:
    """Online IPC probing: run at both levels, keep the higher raw IPC.

    ``min_gain`` guards against switching for noise.  The predictor is
    deliberately built on *executed* aggregate IPC — the observable a
    probe actually has — which spin inflation distorts (paper §I: "IPC
    is not always an accurate indicator of application performance,
    e.g. in case of spin-lock contention").
    """

    min_gain: float = 0.0

    def predicts_higher(self, high_run: RunResult, low_run: RunResult) -> bool:
        if high_run.smt_level <= low_run.smt_level:
            raise ValueError(
                f"expected high_run at a higher SMT level: "
                f"{high_run.smt_level} vs {low_run.smt_level}"
            )
        return high_run.aggregate_ipc > low_run.aggregate_ipc * (1.0 + self.min_gain)

    def correct(self, high_run: RunResult, low_run: RunResult) -> bool:
        """Did the probe pick the level with better *useful* performance?"""
        actual_higher_wins = high_run.performance >= low_run.performance
        return self.predicts_higher(high_run, low_run) == actual_higher_wins
