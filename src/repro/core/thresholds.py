"""Threshold selection for the SMT-selection metric (paper §V).

Two methods turn a training set of ``(metric, speedup)`` pairs into a
decision threshold for "switch to the lower SMT level":

* **Gini impurity** (§V-A): label each point by whether the higher SMT
  level won (speedup >= 1), scan candidate separators, and pick the one
  minimizing the size-weighted impurity of the two sides.
* **Average percentage performance improvement, PPI** (§V-B): for each
  candidate threshold, estimate the average improvement from switching
  every above-threshold workload down, and pick the maximizing
  threshold.  Unlike Gini, this weighs *how much* speedup is at stake,
  and exposes the threshold plateau where the expected gain stays high.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class GiniPoint:
    separator: float
    impurity: float


@dataclass(frozen=True)
class PpiPoint:
    threshold: float
    avg_improvement_pct: float


def _validate(metrics: Sequence[float], speedups: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    m = np.asarray(list(metrics), dtype=float)
    s = np.asarray(list(speedups), dtype=float)
    if m.shape != s.shape or m.ndim != 1:
        raise ValueError(f"metrics and speedups must be equal-length 1-d: {m.shape} vs {s.shape}")
    if m.size < 2:
        raise ValueError("need at least two (metric, speedup) observations")
    if np.any(m < 0):
        raise ValueError("metric values must be >= 0")
    if np.any(s <= 0):
        raise ValueError("speedups must be > 0")
    return m, s


def gini_impurity(metrics: Sequence[float], speedups: Sequence[float], separator: float) -> float:
    """Overall Gini impurity of the split at ``separator`` (Eqs. 4-6).

    Points are labelled ``i = 1`` when speedup >= 1 (the higher SMT
    level is at least as good) and ``i = 0`` otherwise.
    """
    m, s = _validate(metrics, speedups)
    labels = (s >= 1.0).astype(int)
    left = m < separator
    right = ~left

    def side_impurity(mask: np.ndarray) -> Tuple[float, int]:
        n = int(mask.sum())
        if n == 0:
            return 0.0, 0
        p1 = labels[mask].mean()
        return 1.0 - p1 ** 2 - (1.0 - p1) ** 2, n

    il, nl = side_impurity(left)
    ir, nr = side_impurity(right)
    total = nl + nr
    return (nl / total) * il + (nr / total) * ir


def _candidate_separators(m: np.ndarray) -> np.ndarray:
    """Midpoints between consecutive distinct metric values, plus ends."""
    uniq = np.unique(m)
    mids = (uniq[:-1] + uniq[1:]) / 2.0
    lo = max(0.0, uniq[0] - 1e-6)
    hi = uniq[-1] + 1e-6
    return np.concatenate(([lo], mids, [hi]))


def gini_curve(metrics: Sequence[float], speedups: Sequence[float],
               n_points: int = 200) -> List[GiniPoint]:
    """Impurity over an even grid of separators (Fig. 16's curve)."""
    m, s = _validate(metrics, speedups)
    grid = np.linspace(0.0, float(m.max()) * 1.05, n_points)
    return [GiniPoint(float(x), gini_impurity(m, s, float(x))) for x in grid]


def optimal_threshold_range(metrics: Sequence[float], speedups: Sequence[float]
                            ) -> Tuple[float, float, float]:
    """``(lo, hi, min_impurity)``: the separator range achieving the
    minimum impurity (Fig. 16's dotted vertical lines).

    A wide range means new applications are unlikely to be mispredicted
    (§V-A's second fitness criterion).
    """
    m, s = _validate(metrics, speedups)
    candidates = _candidate_separators(m)
    impurities = np.array([gini_impurity(m, s, float(c)) for c in candidates])
    best = impurities.min()
    winners = candidates[np.isclose(impurities, best, atol=1e-12)]
    return float(winners.min()), float(winners.max()), float(best)


def ppi_curve(metrics: Sequence[float], speedups: Sequence[float],
              n_points: int = 200) -> List[PpiPoint]:
    """Average expected PPI at each candidate threshold (Fig. 17).

    For a benchmark with metric above the threshold, switching down
    improves performance by ``(1/speedup - 1) * 100`` percent (speedup
    here is high-SMT over low-SMT); below the threshold the expected
    improvement is zero (§V-B).
    """
    m, s = _validate(metrics, speedups)
    grid = np.linspace(0.0, float(m.max()) * 1.05, n_points)
    points = []
    for threshold in grid:
        ppi = np.where(m > threshold, (1.0 / s - 1.0) * 100.0, 0.0)
        points.append(PpiPoint(float(threshold), float(ppi.mean())))
    return points


def best_ppi_threshold(metrics: Sequence[float], speedups: Sequence[float]
                       ) -> Tuple[float, float]:
    """``(threshold, avg_improvement_pct)`` maximizing the expected PPI."""
    m, s = _validate(metrics, speedups)
    candidates = _candidate_separators(m)
    best_t, best_v = 0.0, -np.inf
    for threshold in candidates:
        ppi = float(np.where(m > threshold, (1.0 / s - 1.0) * 100.0, 0.0).mean())
        if ppi > best_v:
            best_t, best_v = float(threshold), ppi
    return best_t, best_v


def ppi_plateau(metrics: Sequence[float], speedups: Sequence[float],
                min_improvement_pct: float) -> Tuple[float, float]:
    """The (lo, hi) threshold range whose average PPI stays above
    ``min_improvement_pct`` — §V-B's robustness argument (a new
    application landing anywhere in this range is safe)."""
    points = ppi_curve(metrics, speedups, n_points=400)
    good = [p.threshold for p in points if p.avg_improvement_pct >= min_improvement_pct]
    if not good:
        raise ValueError(
            f"no threshold reaches an average PPI of {min_improvement_pct}%"
        )
    return min(good), max(good)
