"""The SMT-selection metric (SMTsm) and its applications.

This package is the paper's contribution:

* :mod:`repro.core.metric` — SMTsm itself (Eq. 1) with the POWER7
  (Eq. 2) and Nehalem (Eq. 3) specializations falling out of the
  architecture descriptions;
* :mod:`repro.core.thresholds` — threshold selection via Gini impurity
  (§V-A) and expected percentage performance improvement (§V-B);
* :mod:`repro.core.predictor` — the fitted SMT-level predictor and its
  evaluation protocol;
* :mod:`repro.core.baselines` — the naive single-counter predictors of
  Fig. 2 and the online IPC-probing alternative of §I;
* :mod:`repro.core.optimizer` — an online SMT-level optimizer (§V);
* :mod:`repro.core.phases` — windowed/online metric tracking;
* :mod:`repro.core.robust` — noise-hardened online estimation and
  SMT-level control (graceful degradation, EWMA + hysteresis +
  cooldown) for fault-injected counter streams.
"""

from repro.core.metric import SmtsmResult, smtsm, smtsm_from_run
from repro.core.thresholds import (
    GiniPoint,
    PpiPoint,
    gini_curve,
    gini_impurity,
    optimal_threshold_range,
    ppi_curve,
    best_ppi_threshold,
)
from repro.core.predictor import Observation, SmtPredictor, evaluate_predictor
from repro.core.baselines import (
    CounterPredictor,
    IpcProbePredictor,
    NAIVE_METRICS,
    naive_metric_value,
)
from repro.core.optimizer import OnlineSmtOptimizer, OptimizerConfig, OptimizerStep
from repro.core.phases import MetricTracker
from repro.core.robust import (
    ControllerDecision,
    HardenedConfig,
    HardenedController,
    RobustSmtsm,
    drive_online,
    naive_decision,
    robust_smtsm,
)

__all__ = [
    "SmtsmResult",
    "smtsm",
    "smtsm_from_run",
    "GiniPoint",
    "PpiPoint",
    "gini_curve",
    "gini_impurity",
    "optimal_threshold_range",
    "ppi_curve",
    "best_ppi_threshold",
    "Observation",
    "SmtPredictor",
    "evaluate_predictor",
    "CounterPredictor",
    "IpcProbePredictor",
    "NAIVE_METRICS",
    "naive_metric_value",
    "OnlineSmtOptimizer",
    "OptimizerConfig",
    "OptimizerStep",
    "MetricTracker",
    "RobustSmtsm",
    "robust_smtsm",
    "HardenedConfig",
    "HardenedController",
    "ControllerDecision",
    "naive_decision",
    "drive_online",
]
