"""The fitted SMT-level predictor and its evaluation protocol.

An :class:`SmtPredictor` holds a threshold for one (architecture,
SMT-level-pair) combination: metric above the threshold predicts the
*lower* level wins, below predicts the *higher* level.  Fitting uses
either threshold method from :mod:`repro.core.thresholds`; evaluation
reports the success rate the paper quotes (93% POWER7, 86% Nehalem,
90% overall).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.thresholds import (
    _candidate_separators,
    _validate,
    best_ppi_threshold,
    gini_impurity,
)


def _fit_oriented_gini(metrics: Sequence[float], speedups: Sequence[float]) -> float:
    """Minimum-misclassification separator with canonical orientation."""
    m, s = _validate(metrics, speedups)
    labels = s >= 1.0
    best_key = None
    best_thresholds: List[float] = []
    for candidate in _candidate_separators(m):
        predicted_higher = m <= candidate
        errors = int(np.sum(predicted_higher != labels))
        key = (errors, round(gini_impurity(m, s, float(candidate)), 12))
        if best_key is None or key < best_key:
            best_key = key
            best_thresholds = [float(candidate)]
        elif key == best_key:
            best_thresholds.append(float(candidate))
    return (min(best_thresholds) + max(best_thresholds)) / 2.0


@dataclass(frozen=True)
class Observation:
    """One training/evaluation point: a workload measured once.

    ``metric`` is SMTsm measured at the higher level; ``speedup`` is
    performance(higher) / performance(lower) over the same work.
    """

    name: str
    metric: float
    speedup: float

    def __post_init__(self):
        if self.metric < 0:
            raise ValueError(f"metric must be >= 0, got {self.metric}")
        if self.speedup <= 0:
            raise ValueError(f"speedup must be > 0, got {self.speedup}")

    @property
    def prefers_higher(self) -> bool:
        return self.speedup >= 1.0


@dataclass(frozen=True)
class SmtPredictor:
    """Threshold predictor for one SMT-level pair."""

    threshold: float
    high_level: int
    low_level: int
    method: str = "gini"

    def __post_init__(self):
        if self.threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {self.threshold}")
        if self.high_level <= self.low_level:
            raise ValueError(
                f"high_level ({self.high_level}) must exceed low_level ({self.low_level})"
            )

    def predicts_higher(self, metric: float) -> bool:
        """True if the metric predicts the higher SMT level wins."""
        if metric < 0:
            raise ValueError(f"metric must be >= 0, got {metric}")
        return metric <= self.threshold

    def recommend(self, metric: float) -> int:
        return self.high_level if self.predicts_higher(metric) else self.low_level

    @classmethod
    def fit(
        cls,
        observations: Sequence[Observation],
        *,
        high_level: int,
        low_level: int,
        method: str = "gini",
    ) -> "SmtPredictor":
        """Fit the threshold from training observations (§V).

        ``method="gini"`` scans the candidate separators and picks the
        one minimizing misclassification under the metric's canonical
        orientation (low metric -> higher SMT level), breaking ties by
        Gini impurity and then by margin (midpoint of the widest
        equally-good range).  Raw impurity alone is orientation-blind:
        on a set where nearly every benchmark prefers the higher level
        it can choose a "pure" split that inverts the decision rule, so
        the error term anchors the orientation.  ``method="ppi"`` uses
        the PPI-maximizing threshold (§V-B).
        """
        obs = list(observations)
        metrics = [o.metric for o in obs]
        speedups = [o.speedup for o in obs]
        if method == "gini":
            threshold = _fit_oriented_gini(metrics, speedups)
        elif method == "ppi":
            threshold, _ = best_ppi_threshold(metrics, speedups)
        else:
            raise ValueError(f"unknown fitting method {method!r} (use 'gini' or 'ppi')")
        return cls(threshold=threshold, high_level=high_level,
                   low_level=low_level, method=method)


@dataclass(frozen=True)
class PredictorReport:
    """Evaluation of a predictor over a benchmark set."""

    n_total: int
    n_correct: int
    mispredicted: Tuple[str, ...]
    threshold: float

    @property
    def success_rate(self) -> float:
        return self.n_correct / self.n_total

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.n_correct}/{self.n_total} correct "
            f"({100 * self.success_rate:.0f}%) at threshold {self.threshold:.4f}; "
            f"missed: {', '.join(self.mispredicted) or 'none'}"
        )


def evaluate_predictor(
    predictor: SmtPredictor, observations: Iterable[Observation]
) -> PredictorReport:
    """Score a predictor: a point is correct when the predicted side
    matches where the speedup actually fell (ties at 1.0 count as
    preferring the higher level, matching the paper's labelling)."""
    obs = list(observations)
    if not obs:
        raise ValueError("cannot evaluate on zero observations")
    missed: List[str] = []
    for o in obs:
        if predictor.predicts_higher(o.metric) != o.prefers_higher:
            missed.append(o.name)
    return PredictorReport(
        n_total=len(obs),
        n_correct=len(obs) - len(missed),
        mispredicted=tuple(missed),
        threshold=predictor.threshold,
    )
