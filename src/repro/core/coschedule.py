"""SMT co-scheduling guided by the ideal-mix principle (extension).

The paper's related work (§VI) surveys symbiotic job schedulers — SOS
and successors — that pick which independent jobs should share an SMT
core.  SMTsm itself selects the *level*, not the pairing; but its first
factor suggests a natural pairing heuristic: co-schedule jobs whose
*combined* instruction mix is closest to the processor's ideal SMT mix
(threads with anti-correlated resource requirements, exactly the
intuition of §I).

This module implements that heuristic plus the machinery to validate
it: greedy mix-complementary pairing, random and adversarial baselines,
and evaluation on the heterogeneous system solver using the standard
*weighted speedup* symbiosis figure (sum over jobs of co-run IPC over
solo IPC).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.arch.classes import Mix
from repro.arch.machine import Architecture
from repro.sim.chip import SystemSolution, solve_system
from repro.sim.fast_core import CoreInput, solve_core
from repro.sim.stream import StreamParams
from repro.simos.scheduler import Placement
from repro.simos.system import SystemSpec
from repro.util.rng import RngStream


@dataclass(frozen=True)
class Job:
    """A single-threaded job eligible for co-scheduling."""

    name: str
    stream: StreamParams

    def __post_init__(self):
        if not self.name:
            raise ValueError("job name must be non-empty")


Pairing = Tuple[Tuple[Job, Job], ...]


def combined_deviation(arch: Architecture, streams: Sequence[StreamParams]) -> float:
    """Deviation of the co-runners' combined mix from the ideal SMT mix.

    The combined mix weights each thread equally — a first-order stand-in
    for the issue slots each will occupy.
    """
    if not streams:
        raise ValueError("need at least one stream")
    mean = np.mean([s.mix.vector for s in streams], axis=0)
    return arch.mix_deviation(Mix(mean))


#: Weight of the cache-thrash term relative to the mix term.
CACHE_WEIGHT = 0.15
#: L1 MPKI at which a job counts as fully "hot".
HEAT_NORM = 20.0


def mutual_thrash(a: Job, b: Job) -> float:
    """Predicted private-cache interference between two co-runners.

    Each job suffers in proportion to its own capacity sensitivity
    (``locality_alpha``) times the partner's footprint heat — both
    derivable from solo-run counters, so the heuristic stays within the
    paper's online-measurement discipline.
    """
    heat_a = min(1.0, a.stream.memory.l1_mpki / HEAT_NORM)
    heat_b = min(1.0, b.stream.memory.l1_mpki / HEAT_NORM)
    return (a.stream.memory.locality_alpha * heat_b
            + b.stream.memory.locality_alpha * heat_a)


def pair_score(arch: Architecture, a: Job, b: Job) -> float:
    """Lower is better: predicted symbiosis of co-scheduling a with b.

    Combines the two §I contention channels: functional-unit overlap
    (combined-mix deviation from the ideal SMT mix) and private-cache
    pressure (mutual thrash).
    """
    return (
        combined_deviation(arch, (a.stream, b.stream))
        + CACHE_WEIGHT * mutual_thrash(a, b)
    )


#: Exact matching is enumerated up to this many jobs (10 -> 945
#: matchings); beyond it a greedy fallback is used.
EXACT_MATCH_LIMIT = 10


def _all_matchings(indices: Tuple[int, ...]):
    """Yield every perfect matching of the index set."""
    if not indices:
        yield ()
        return
    first, rest = indices[0], indices[1:]
    for pos, partner in enumerate(rest):
        remainder = rest[:pos] + rest[pos + 1:]
        for sub in _all_matchings(remainder):
            yield ((first, partner),) + sub


def _best_match(arch: Architecture, jobs: Sequence[Job], *, worst: bool) -> Pairing:
    if len(jobs) % 2 != 0:
        raise ValueError(f"need an even number of jobs, got {len(jobs)}")
    if not jobs:
        raise ValueError("need at least one pair of jobs")
    scores = {
        (i, j): pair_score(arch, a, b)
        for (i, a), (j, b) in combinations(enumerate(jobs), 2)
    }
    if len(jobs) <= EXACT_MATCH_LIMIT:
        # Exhaustive search: greedy matching is famously pathological on
        # sets with extreme pairs (it pins them together from both ends
        # of the objective).
        pick = max if worst else min
        best = pick(
            _all_matchings(tuple(range(len(jobs)))),
            key=lambda m: sum(scores[pair] for pair in m),
        )
        return tuple((jobs[i], jobs[j]) for i, j in best)
    remaining = list(range(len(jobs)))
    pairs: List[Tuple[Job, Job]] = []
    while remaining:
        candidates = [
            (scores[(min(i, j), max(i, j))], i, j)
            for pos, i in enumerate(remaining)
            for j in remaining[pos + 1:]
        ]
        _, i, j = (max if worst else min)(candidates)
        remaining.remove(j)
        remaining.remove(i)
        pairs.append((jobs[i], jobs[j]))
    return tuple(pairs)


def mix_complementary_pairing(arch: Architecture, jobs: Sequence[Job]) -> Pairing:
    """Pairing minimizing the total predicted-contention score."""
    return _best_match(arch, jobs, worst=False)


def adversarial_pairing(arch: Architecture, jobs: Sequence[Job]) -> Pairing:
    """Pairing *maximizing* the score — the stress baseline."""
    return _best_match(arch, jobs, worst=True)


def random_pairing(jobs: Sequence[Job], rng: RngStream) -> Pairing:
    if len(jobs) % 2 != 0:
        raise ValueError(f"need an even number of jobs, got {len(jobs)}")
    order = list(jobs)
    perm = rng.gen.permutation(len(order))
    shuffled = [order[i] for i in perm]
    return tuple((shuffled[i], shuffled[i + 1]) for i in range(0, len(shuffled), 2))


@dataclass(frozen=True)
class ScheduleOutcome:
    """Evaluation of one pairing."""

    pairing: Pairing
    weighted_speedup: float          # sum over jobs of co-IPC / solo-IPC
    per_job_slowdown: Dict[str, float]
    solution: SystemSolution

    @property
    def avg_symbiosis(self) -> float:
        """Mean per-job co-run efficiency (1.0 = no interference)."""
        return self.weighted_speedup / len(self.per_job_slowdown)


def _paired_placement(system: SystemSpec, n_pairs: int) -> Placement:
    """Pairs stacked two-per-core at SMT2, remaining cores idle."""
    system.arch.validate_smt_level(2)
    if n_pairs > system.total_cores:
        raise ValueError(
            f"{n_pairs} pairs exceed {system.total_cores} cores"
        )
    counts = [2 if c < n_pairs else 0 for c in range(system.total_cores)]
    assignment = tuple(i // 2 for i in range(2 * n_pairs))
    return Placement(
        system=system,
        smt_level=2,
        n_threads=2 * n_pairs,
        threads_per_core=tuple(counts),
        assignment=assignment,
    )


def solo_ipc(arch: Architecture, job: Job) -> float:
    """The job's IPC running alone on a core in SMT1 mode."""
    out = solve_core(
        CoreInput(arch=arch, smt_level=1, streams=(job.stream,), threads_per_chip=1)
    )
    return float(out.ipc[0])


def evaluate_pairing(system: SystemSpec, pairing: Pairing) -> ScheduleOutcome:
    """Run every pair on its own SMT2 core and score the symbiosis."""
    if not pairing:
        raise ValueError("empty pairing")
    jobs: List[Job] = [job for pair in pairing for job in pair]
    placement = _paired_placement(system, len(pairing))
    solution = solve_system(placement, [job.stream for job in jobs])
    slowdowns: Dict[str, float] = {}
    weighted = 0.0
    for index, job in enumerate(jobs):
        solo = solo_ipc(system.arch, job)
        ratio = solution.thread_ipc(index) / solo
        slowdowns[job.name] = ratio
        weighted += ratio
    return ScheduleOutcome(
        pairing=pairing,
        weighted_speedup=weighted,
        per_job_slowdown=slowdowns,
        solution=solution,
    )
