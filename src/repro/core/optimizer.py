"""Online SMT-level optimizer (paper §V).

Implements the usage pattern the paper proposes for schedulers and
user-level tuners:

* run at the **highest** SMT level by default — both because that is
  every SMT processor's default and because §IV-B shows the metric is
  only trustworthy when measured at the highest level;
* sample SMTsm periodically while there; when it crosses the fitted
  threshold(s), switch the system down via ``smtctl``;
* while running at a lower level the metric cannot foresee higher-level
  contention, so **re-probe**: periodically hop back to the top level
  for one interval and re-measure.

The optimizer is deliberately conservative about switch costs: each
transition charges the controller's drain/re-place cost, so thrashing
between levels on a noisy metric is penalized, and the
:class:`~repro.core.phases.MetricTracker` smoothing exists to prevent
exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.metric import SmtsmResult, smtsm_from_run
from repro.core.phases import MetricTracker
from repro.core.predictor import SmtPredictor
from repro.sim.engine import RunSpec, simulate_run
from repro.simos.smtctl import SmtController
from repro.simos.system import SystemSpec
from repro.util.validation import check_positive
from repro.workloads.phases import PhasedWorkload


@dataclass(frozen=True)
class OptimizerConfig:
    """Decision parameters.

    ``predictors`` maps a lower SMT level to the fitted predictor for
    (max level vs that level); the optimizer picks the *lowest* level
    whose predictor fires (largest threshold crossed first).
    ``probe_every`` counts decision intervals between re-probes while
    parked at a lower level.
    """

    predictors: Dict[int, SmtPredictor]
    chunk_work: float = 2e9
    probe_every: int = 4
    probe_work_fraction: float = 0.25
    switch_cost_s: float = 0.005
    seed: int = 0

    def __post_init__(self):
        if not self.predictors:
            raise ValueError("need at least one lower-level predictor")
        check_positive("chunk_work", self.chunk_work)
        if self.probe_every < 1:
            raise ValueError(f"probe_every must be >= 1, got {self.probe_every}")
        if not (0.0 < self.probe_work_fraction <= 1.0):
            raise ValueError(
                f"probe_work_fraction must be in (0, 1], got {self.probe_work_fraction}"
            )


@dataclass(frozen=True)
class OptimizerStep:
    """One decision interval."""

    index: int
    smt_level: int
    metric: Optional[SmtsmResult]   # None when below max level (not probing)
    wall_time_s: float
    switched_to: Optional[int]
    phase_name: str


@dataclass(frozen=True)
class OptimizerResult:
    steps: Tuple[OptimizerStep, ...]
    total_wall_time_s: float
    switch_overhead_s: float
    n_switches: int

    def time_at_level(self, level: int) -> float:
        return sum(s.wall_time_s for s in self.steps if s.smt_level == level)


class OnlineSmtOptimizer:
    """Drives a phased workload, adapting the SMT level online."""

    def __init__(self, system: SystemSpec, config: OptimizerConfig):
        self.system = system
        self.config = config
        self.arch = system.arch
        max_level = self.arch.max_smt
        for low, pred in config.predictors.items():
            self.arch.validate_smt_level(low)
            if low >= max_level:
                raise ValueError(
                    f"predictor target SMT{low} is not below max SMT{max_level}"
                )
            if pred.high_level != max_level or pred.low_level != low:
                raise ValueError(
                    f"predictor for SMT{low} has levels "
                    f"{pred.high_level}v{pred.low_level}, expected {max_level}v{low}"
                )

    def _choose_level(self, metric: float) -> int:
        """Lowest level whose predictor says to leave the max level."""
        for low in sorted(self.config.predictors):
            if not self.config.predictors[low].predicts_higher(metric):
                return low
        return self.arch.max_smt

    def run(self, workload: PhasedWorkload) -> OptimizerResult:
        cfg = self.config
        controller = SmtController(self.arch, switch_cost_s=cfg.switch_cost_s)
        tracker = MetricTracker()
        steps: List[OptimizerStep] = []
        work_done = 0.0
        wall = 0.0
        intervals_since_probe = 0
        index = 0
        max_level = self.arch.max_smt
        probing = False  # current interval is a short re-probe at max level

        while work_done < workload.total_work - 1e-6:
            phase = workload.phase_at(work_done)
            chunk = min(cfg.chunk_work, workload.total_work - work_done)
            if probing:
                # A probe interval is deliberately short: it runs at the
                # (possibly slower) max level only long enough to read
                # the counters, bounding the cost of re-measuring.
                chunk = min(chunk, cfg.chunk_work * cfg.probe_work_fraction)
            level = controller.level
            result = simulate_run(
                RunSpec(
                    system=self.system,
                    smt_level=level,
                    stream=phase.spec.stream,
                    sync=phase.spec.sync,
                    useful_instructions=chunk,
                    seed=cfg.seed + index,
                )
            )
            wall += result.wall_time_s
            work_done += chunk

            metric: Optional[SmtsmResult] = None
            switched_to: Optional[int] = None
            if level == max_level:
                probing = False
                metric = smtsm_from_run(result)
                tracker.update(metric)
                target = self._choose_level(tracker.estimate)
                if target != level:
                    controller.switch(target, at_time_s=wall)
                    wall += cfg.switch_cost_s
                    switched_to = target
                    intervals_since_probe = 0
            else:
                intervals_since_probe += 1
                if intervals_since_probe >= cfg.probe_every:
                    # Hop back up to re-measure next interval (§IV-B:
                    # the metric must be taken at the highest level).
                    controller.switch(max_level, at_time_s=wall)
                    wall += cfg.switch_cost_s
                    switched_to = max_level
                    intervals_since_probe = 0
                    tracker.reset()
                    probing = True
            steps.append(
                OptimizerStep(
                    index=index,
                    smt_level=level,
                    metric=metric,
                    wall_time_s=result.wall_time_s,
                    switched_to=switched_to,
                    phase_name=phase.spec.name,
                )
            )
            index += 1

        return OptimizerResult(
            steps=tuple(steps),
            total_wall_time_s=wall,
            switch_overhead_s=controller.total_switch_cost_s,
            n_switches=controller.n_switches(),
        )

    def run_static(self, workload: PhasedWorkload, level: int) -> float:
        """Wall time of the non-adaptive baseline at a fixed level."""
        self.arch.validate_smt_level(level)
        wall = 0.0
        work_done = 0.0
        index = 0
        while work_done < workload.total_work - 1e-6:
            phase = workload.phase_at(work_done)
            chunk = min(self.config.chunk_work, workload.total_work - work_done)
            result = simulate_run(
                RunSpec(
                    system=self.system,
                    smt_level=level,
                    stream=phase.spec.stream,
                    sync=phase.spec.sync,
                    useful_instructions=chunk,
                    seed=self.config.seed + index,
                )
            )
            wall += result.wall_time_s
            work_done += chunk
            index += 1
        return wall
