"""The SMT-selection metric, SMTsm (paper Eq. 1).

::

    SMTsm = sqrt( sum_i (f_i - ideal_i)^2 )        # instruction-mix deviation
            * DispHeld                             # dispatch-held fraction
            * TotalTime / AvgThrdTime              # scalability ratio

Smaller values indicate greater preference for a higher SMT level.

The architecture decides the metric space: POWER7 compares per-class
fractions against the (1/7, 1/7, 1/7, 2/7, 2/7) ideal (Eq. 2); Nehalem
compares per-issue-port fractions against the uniform 1/6 ideal
(Eq. 3); any :class:`~repro.arch.machine.Architecture` — including
user-defined ones — supplies its own ideal vector, which is how the
metric "can easily be adapted to other architectures" (§VII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.counters.pmu import CounterSample
from repro.sim.results import RunResult


@dataclass(frozen=True)
class SmtsmResult:
    """An SMTsm evaluation with its factor breakdown.

    Keeping the factors visible is essential for the paper's analyses:
    Fig. 7 reads the mix term alone, §IV-B explains the SMT1 breakdown
    through which factors go blind at low SMT levels, and the ablation
    bench drops factors one at a time.
    """

    value: float
    mix_deviation: float
    dispatch_held: float
    scalability_ratio: float
    smt_level: int
    arch_name: str

    def __post_init__(self):
        for name in ("value", "mix_deviation", "dispatch_held"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if self.scalability_ratio <= 0:
            raise ValueError(
                f"scalability_ratio must be > 0, got {self.scalability_ratio}"
            )

    def factors(self) -> Tuple[float, float, float]:
        return (self.mix_deviation, self.dispatch_held, self.scalability_ratio)

    def __float__(self) -> float:
        return self.value


def smtsm(sample: CounterSample) -> SmtsmResult:
    """Evaluate the SMT-selection metric on a counter sample.

    Everything comes from online-measurable quantities: per-class (or
    per-port) issue counters for the mix term, the dispatch-held
    counter for the second term, and wall/CPU times for the third.
    """
    arch = sample.arch
    fractions = sample.metric_fractions()
    ideal = arch.ideal_vector()
    deviation = float(np.sqrt(np.sum((fractions - ideal) ** 2)))
    held = sample.dispatch_held_fraction
    scalability = sample.scalability_ratio
    return SmtsmResult(
        value=deviation * held * scalability,
        mix_deviation=deviation,
        dispatch_held=held,
        scalability_ratio=scalability,
        smt_level=sample.smt_level,
        arch_name=arch.name,
    )


def smtsm_from_run(result: RunResult) -> SmtsmResult:
    """Convenience: evaluate the metric on a simulated run's counters."""
    return smtsm(result.counter_sample())
