"""IBM POWER5 description (paper §I, §VI).

The paper credits POWER5 as the first IBM processor with "dynamically
managed levels of priority for hardware threads", and its §VI discusses
Mathis et al.'s characterization of SMT2 on this core.  The model lets
the related-work replication (`experiments/related_mathis_power5.py`)
run on period-appropriate hardware: a dual-core chip, 2-way SMT,
1.9 GHz, narrower back end and a slower memory system than POWER7.

Execution resources per core: two fixed-point units, two load/store
units, two double-precision FP units, one branch and one CR unit — the
same typed-port structure as POWER7 (CR folded into branch for the
metric), so the class-space ideal mix keeps the Eq. 2 form with FP
taking the VS role.
"""

from __future__ import annotations

from repro.arch.classes import InstrClass
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.partition import SmtPartition
from repro.arch.ports import IssuePort, PortTopology, single_class_routing


def power5(cores_per_chip: int = 2) -> Architecture:
    """Build the POWER5 architecture model (dual-core chip by default)."""
    topology = PortTopology(
        ports=[
            IssuePort("LS", 2.0),
            IssuePort("FX", 2.0),
            IssuePort("FP", 2.0),
            IssuePort("BR", 1.0),  # CR folded in, as on POWER7
        ],
        routing=single_class_routing(
            {
                InstrClass.LOAD: "LS",
                InstrClass.STORE: "LS",
                InstrClass.BRANCH: "BR",
                InstrClass.FX: "FX",
                InstrClass.VS: "FP",
            }
        ),
    )
    partition = SmtPartition(
        fetch_width=8,
        dispatch_width=5,
        issue_width=8,
        queue_entries=36,
        rob_entries=100,
        queue_share={1: 1.0, 2: 0.5},
        rob_share={1: 1.0, 2: 0.5},
        smt1_boost=1.1,  # single-thread mode releases partitioned resources
    )
    caches = CacheGeometry(
        l1d_kb=32.0,
        l2_kb=960.0,               # 1.9 MB shared L2 / 2 cores
        l3_mb=18.0,                # 36 MB off-chip L3 / 2 chips stylized
        line_bytes=128,
        lat_l2=13.0,
        lat_l3=90.0,               # off-chip L3 round trip
        lat_mem=450.0,             # ~240 ns at 1.9 GHz
        mem_bandwidth_gbps=12.0,
        numa_extra_cycles=150.0,
    )
    return Architecture(
        name="POWER5",
        description="IBM POWER5: dual-core, 2-way SMT, typed issue ports",
        frequency_ghz=1.9,
        cores_per_chip=cores_per_chip,
        smt_levels=(1, 2),
        topology=topology,
        partition=partition,
        caches=caches,
        branch_penalty=14.0,
        metric_space="class",
        ideal_class_fractions=(1 / 7, 1 / 7, 1 / 7, 2 / 7, 2 / 7),
        dispatch_held_event="PM_GRP_DISP_BLK_SB_CYC",
    )
