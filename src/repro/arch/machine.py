"""The :class:`Architecture` record tying together everything the
simulator and the metric need to know about a processor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

from repro.arch.classes import CLASS_ORDER, InstrClass, Mix
from repro.arch.partition import SmtPartition
from repro.arch.ports import PortTopology
from repro.util.validation import check_positive, check_probability_vector


@dataclass(frozen=True)
class CacheGeometry:
    """Cache hierarchy and memory-system geometry for one chip.

    L1/L2 are private per core, L3 is shared per chip.  Latencies are
    *additional* cycles beyond an L1 hit.  ``mem_bandwidth_gbps`` is the
    sustainable per-chip DRAM bandwidth; the memory model inflates the
    effective memory latency as demand approaches it.
    """

    l1d_kb: float
    l2_kb: float
    l3_mb: float
    line_bytes: int
    lat_l2: float
    lat_l3: float
    lat_mem: float
    mem_bandwidth_gbps: float
    numa_extra_cycles: float = 0.0

    def __post_init__(self):
        check_positive("l1d_kb", self.l1d_kb)
        check_positive("l2_kb", self.l2_kb)
        check_positive("l3_mb", self.l3_mb)
        check_positive("line_bytes", self.line_bytes)
        check_positive("lat_l2", self.lat_l2)
        check_positive("lat_l3", self.lat_l3)
        check_positive("lat_mem", self.lat_mem)
        check_positive("mem_bandwidth_gbps", self.mem_bandwidth_gbps)
        if self.lat_l2 >= self.lat_l3 or self.lat_l3 >= self.lat_mem:
            raise ValueError(
                "latencies must increase down the hierarchy: "
                f"L2={self.lat_l2} L3={self.lat_l3} mem={self.lat_mem}"
            )
        if self.numa_extra_cycles < 0:
            raise ValueError(f"numa_extra_cycles must be >= 0, got {self.numa_extra_cycles}")


@dataclass(frozen=True)
class Architecture:
    """A complete machine description.

    ``metric_space`` selects how the SMT-selection metric's instruction
    fractions are formed (paper §II-A vs §II-B):

    * ``"class"`` — fractions over instruction classes, compared against
      ``ideal_class_fractions`` (POWER7, Eq. 2: 1/7 loads, 1/7 stores,
      1/7 branches, 2/7 FX, 2/7 VS);
    * ``"port"`` — fractions of instructions issued through each issue
      port, compared against the capacity-proportional ideal (Nehalem,
      Eq. 3: 1/6 per port).
    """

    name: str
    description: str
    frequency_ghz: float
    cores_per_chip: int
    smt_levels: Tuple[int, ...]
    topology: PortTopology
    partition: SmtPartition
    caches: CacheGeometry
    branch_penalty: float
    metric_space: str = "port"
    ideal_class_fractions: Optional[Tuple[float, ...]] = None
    dispatch_held_event: str = "DISP_HELD_RES"

    def __post_init__(self):
        check_positive("frequency_ghz", self.frequency_ghz)
        check_positive("cores_per_chip", self.cores_per_chip)
        check_positive("branch_penalty", self.branch_penalty)
        if not self.smt_levels or sorted(self.smt_levels) != list(self.smt_levels):
            raise ValueError(f"smt_levels must be sorted and non-empty: {self.smt_levels}")
        if self.smt_levels[0] != 1:
            raise ValueError("smt_levels must include SMT1")
        for level in self.smt_levels:
            # Raises if the partition does not cover the level.
            self.partition.thread_resources(level)
        if self.metric_space not in ("class", "port"):
            raise ValueError(f"metric_space must be 'class' or 'port', got {self.metric_space!r}")
        if self.metric_space == "class":
            if self.ideal_class_fractions is None:
                raise ValueError("class-space metric requires ideal_class_fractions")
            vec = check_probability_vector(
                "ideal_class_fractions", self.ideal_class_fractions
            )
            if vec.shape != (len(CLASS_ORDER),):
                raise ValueError(
                    f"ideal_class_fractions needs {len(CLASS_ORDER)} entries, got {vec.shape}"
                )

    # -- SMT level helpers ---------------------------------------------
    @property
    def max_smt(self) -> int:
        return self.smt_levels[-1]

    def validate_smt_level(self, level: int) -> int:
        if level not in self.smt_levels:
            raise ValueError(
                f"{self.name} supports SMT levels {self.smt_levels}, got SMT{level}"
            )
        return int(level)

    def lower_smt_level(self, level: int) -> Optional[int]:
        """The next SMT level below ``level``, or None at SMT1."""
        self.validate_smt_level(level)
        idx = self.smt_levels.index(level)
        return self.smt_levels[idx - 1] if idx > 0 else None

    def effective_smt_mode(self, threads_on_core: int) -> int:
        """Hardware mode a core adopts for a given occupancy.

        POWER7 runs a core at the lowest SMT mode that accommodates the
        software threads present (a lone thread gets SMT1 resources even
        on an SMT4-enabled system, paper §II-A).  The same convention
        covers the paper's Nehalem protocol of "simulating SMT1" by
        running one thread per core with Hyper-Threading left on.
        """
        if threads_on_core < 1:
            raise ValueError(f"threads_on_core must be >= 1, got {threads_on_core}")
        for level in self.smt_levels:
            if level >= threads_on_core:
                return level
        raise ValueError(
            f"{threads_on_core} threads exceed {self.name}'s max SMT level {self.max_smt}"
        )

    # -- metric space ----------------------------------------------------
    def ideal_vector(self) -> np.ndarray:
        """The ideal SMT instruction mix in this architecture's metric space."""
        if self.metric_space == "class":
            return np.asarray(self.ideal_class_fractions, dtype=float)
        return self.topology.ideal_port_fractions()

    def metric_fractions(self, mix: Mix) -> np.ndarray:
        """Project an instruction mix into the metric space."""
        if self.metric_space == "class":
            return mix.vector.copy()
        return self.topology.port_fractions(mix)

    def metric_labels(self) -> Tuple[str, ...]:
        if self.metric_space == "class":
            return tuple(c.name for c in CLASS_ORDER)
        return self.topology.port_names

    def mix_deviation(self, mix: Mix) -> float:
        """First SMTsm factor: L2 deviation of the mix from the ideal."""
        fractions = self.metric_fractions(mix)
        ideal = self.ideal_vector()
        return float(np.sqrt(np.sum((fractions - ideal) ** 2)))

    # -- memory geometry helpers ----------------------------------------
    def cycles_per_second(self) -> float:
        return self.frequency_ghz * 1e9

    def l3_mb_per_core(self) -> float:
        return self.caches.l3_mb / self.cores_per_chip

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Architecture({self.name!r}, cores={self.cores_per_chip}, "
            f"smt={self.smt_levels}, metric={self.metric_space})"
        )
