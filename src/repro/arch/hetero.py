"""Heterogeneous chips: per-core-type clusters with asymmetric SMT.

A :class:`HeteroChip` composes *clusters* — groups of identical cores,
each described by a full :class:`~repro.arch.machine.Architecture` with
its own SMT ceiling, port topology, and cache geometry — into one chip,
in the style of big.LITTLE designs and lumos's heterogeneous MPSoC
models.  Two modelling decisions keep the whole existing simulator
stack (chip solver, columnar engine, surrogate, fleet) valid per
cluster:

* **Clusters are Architectures.**  Each cluster is an ordinary
  :class:`Architecture` instance whose ``cores_per_chip`` is the
  cluster's core count, so ``solve_chip``/``ScenarioTable``/the
  surrogate operate on a cluster exactly as they do on a homogeneous
  chip.  The per-cluster ``(arch, level)`` spaces the scheduler and
  threshold machinery reason over fall out of
  :meth:`HeteroChip.level_space`.
* **Memory bandwidth is QoS-partitioned.**  The chip's DRAM bandwidth
  is split between clusters by a static ``bandwidth_share`` (the
  memory-controller QoS partition found on server SoCs), so each
  cluster's bandwidth fixed point is independent — which is what makes
  the per-cluster decomposition exact rather than approximate.

An optional lumos-style :class:`PowerAreaBudget` validates that the
cluster composition fits the chip's power/area envelope at build time.

Registered hetero chips also register every cluster in the main
architecture registry under ``"<chip>.<cluster>"`` (e.g.
``"biglittle.big"``), so clusters are first-class citizens of the CLI,
the fleet, the conformance checker, and the run cache.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.arch.armsmt import armsmt
from repro.arch.machine import Architecture
from repro.arch.power7 import power7
from repro.arch.registry import _BUILDERS, register_architecture
from repro.util.validation import check_positive


@dataclass(frozen=True)
class PowerAreaBudget:
    """A lumos-style chip envelope the cluster composition must fit."""

    power_w: float
    area_mm2: float

    def __post_init__(self):
        check_positive("power_w", self.power_w)
        check_positive("area_mm2", self.area_mm2)


@dataclass(frozen=True)
class ClusterSpec:
    """One core-type cluster of a heterogeneous chip.

    ``arch.cores_per_chip`` is the cluster's core count and
    ``arch.caches.mem_bandwidth_gbps`` its QoS-partitioned bandwidth
    slice; ``bandwidth_share`` records the fraction of the chip's total
    DRAM bandwidth that slice represents.  ``core_power_w`` and
    ``core_area_mm2`` are per-core costs for budget validation.
    """

    name: str
    arch: Architecture
    bandwidth_share: float
    core_power_w: float = 0.0
    core_area_mm2: float = 0.0

    def __post_init__(self):
        if not self.name or not self.name.isidentifier():
            raise ValueError(
                f"cluster name must be a plain identifier, got {self.name!r}"
            )
        if not (0.0 < self.bandwidth_share <= 1.0):
            raise ValueError(
                f"bandwidth_share must be in (0, 1], got {self.bandwidth_share}"
            )
        if self.core_power_w < 0 or self.core_area_mm2 < 0:
            raise ValueError("per-core power/area costs must be >= 0")

    @property
    def cores(self) -> int:
        return self.arch.cores_per_chip

    @property
    def power_w(self) -> float:
        return self.cores * self.core_power_w

    @property
    def area_mm2(self) -> float:
        return self.cores * self.core_area_mm2


@dataclass(frozen=True)
class HeteroChip:
    """A chip composed of per-core-type clusters with asymmetric SMT."""

    name: str
    description: str
    clusters: Tuple[ClusterSpec, ...]
    budget: Optional[PowerAreaBudget] = None

    def __post_init__(self):
        if not self.clusters:
            raise ValueError("a heterogeneous chip needs at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names: {names}")
        share = sum(c.bandwidth_share for c in self.clusters)
        if share > 1.0 + 1e-9:
            raise ValueError(
                f"cluster bandwidth shares sum to {share:.3f} > 1 "
                "(the memory-controller QoS partition over-commits DRAM)"
            )
        if self.budget is not None:
            power = sum(c.power_w for c in self.clusters)
            area = sum(c.area_mm2 for c in self.clusters)
            if power > self.budget.power_w * (1 + 1e-9):
                raise ValueError(
                    f"cluster power {power:.1f} W exceeds the chip budget "
                    f"{self.budget.power_w:.1f} W"
                )
            if area > self.budget.area_mm2 * (1 + 1e-9):
                raise ValueError(
                    f"cluster area {area:.1f} mm^2 exceeds the chip budget "
                    f"{self.budget.area_mm2:.1f} mm^2"
                )

    # -- structure helpers ----------------------------------------------
    @property
    def cluster_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.clusters)

    @property
    def total_cores(self) -> int:
        return sum(c.cores for c in self.clusters)

    def cluster(self, name: str) -> ClusterSpec:
        for spec in self.clusters:
            if spec.name == name:
                return spec
        raise KeyError(
            f"no cluster {name!r} on {self.name}; clusters: {self.cluster_names}"
        )

    def level_space(self) -> Tuple[Tuple[str, int], ...]:
        """Every schedulable ``(cluster, smt_level)`` pair of the chip."""
        return tuple(
            (spec.name, level)
            for spec in self.clusters
            for level in spec.arch.smt_levels
        )

    def max_levels(self) -> Dict[str, int]:
        """Per-cluster SMT ceilings (the asymmetric part)."""
        return {spec.name: spec.arch.max_smt for spec in self.clusters}

    def validate_levels(self, levels: Mapping[str, int]) -> Dict[str, int]:
        """Check a per-cluster level assignment; returns a plain dict."""
        unknown = set(levels) - set(self.cluster_names)
        if unknown:
            raise ValueError(
                f"unknown clusters {sorted(unknown)}; known: {self.cluster_names}"
            )
        resolved: Dict[str, int] = {}
        for spec in self.clusters:
            level = levels.get(spec.name, spec.arch.max_smt)
            spec.arch.validate_smt_level(level)
            resolved[spec.name] = int(level)
        return resolved

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{c.name}:{c.cores}x{c.arch.name}@smt{c.arch.max_smt}"
            for c in self.clusters
        )
        return f"HeteroChip({self.name!r}, {parts})"


def cluster_architecture(
    base: Architecture,
    *,
    name: str,
    bandwidth_share: float,
    chip_bandwidth_gbps: float,
    description: Optional[str] = None,
) -> Architecture:
    """Derive a cluster's Architecture from a base chip description.

    Renames the architecture and replaces its memory bandwidth with the
    cluster's QoS slice of the chip's DRAM bandwidth; everything else
    (ports, partition, latencies, SMT levels) is inherited from the
    base.  The returned instance revalidates through the dataclass
    ``__post_init__`` chain.
    """
    if not (0.0 < bandwidth_share <= 1.0):
        raise ValueError(f"bandwidth_share must be in (0, 1], got {bandwidth_share}")
    check_positive("chip_bandwidth_gbps", chip_bandwidth_gbps)
    caches = dataclasses.replace(
        base.caches, mem_bandwidth_gbps=chip_bandwidth_gbps * bandwidth_share
    )
    return dataclasses.replace(
        base,
        name=name,
        caches=caches,
        description=description or f"{base.description} [cluster of {name}]",
    )


def big_little() -> HeteroChip:
    """The reference 4+4 big/little chip: POWER7-class big cores (SMT4)
    plus ARM-class little cores (SMT2), under a shared 80 GB/s memory
    controller QoS-partitioned 65/35, inside a lumos-style 120 W /
    220 mm^2 envelope.
    """
    chip_bw = 80.0
    big = ClusterSpec(
        name="big",
        arch=cluster_architecture(
            power7(cores_per_chip=4),
            name="POWER7-big",
            bandwidth_share=0.65,
            chip_bandwidth_gbps=chip_bw,
            description="big cluster: 4 POWER7-class cores, SMT4",
        ),
        bandwidth_share=0.65,
        core_power_w=18.0,
        core_area_mm2=25.0,
    )
    little = ClusterSpec(
        name="little",
        arch=cluster_architecture(
            armsmt(cores_per_chip=4),
            name="ARMv8-little",
            bandwidth_share=0.35,
            chip_bandwidth_gbps=chip_bw,
            description="little cluster: 4 ARM-class cores, SMT2",
        ),
        bandwidth_share=0.35,
        core_power_w=6.0,
        core_area_mm2=8.0,
    )
    return HeteroChip(
        name="biglittle",
        description="4+4 big/little: POWER7-class SMT4 + ARM-class SMT2",
        clusters=(big, little),
        budget=PowerAreaBudget(power_w=120.0, area_mm2=220.0),
    )


# -- registry ------------------------------------------------------------

_HETERO_BUILDERS: Dict[str, Callable[[], HeteroChip]] = {}
#: Memoized chip instances: cluster Architectures must be *stable*
#: objects so the batch engines' identity-based grouping and the
#: fingerprint caches see one instance per cluster per process.
_HETERO_CACHE: Dict[str, HeteroChip] = {}


def register_hetero(
    name: str,
    builder: Callable[[], HeteroChip],
    *,
    register_clusters: bool = True,
) -> None:
    """Register a heterogeneous chip builder under ``name``.

    Also registers every cluster in the main architecture registry as
    ``"<name>.<cluster>"`` (unless ``register_clusters=False`` — the
    conformance checker's arch-coverage gate flags chips whose clusters
    are not reachable that way).  Raises if the name collides with an
    existing hetero chip or architecture.
    """
    key = name.lower()
    if key in _HETERO_BUILDERS:
        raise ValueError(f"hetero chip {name!r} is already registered")
    if key in _BUILDERS:
        raise ValueError(
            f"hetero chip name {name!r} collides with a registered architecture"
        )
    _HETERO_BUILDERS[key] = builder
    if register_clusters:
        chip = get_hetero(key)
        for i, spec in enumerate(chip.clusters):
            register_architecture(
                f"{key}.{spec.name}",
                lambda key=key, i=i: get_hetero(key).clusters[i].arch,
            )


def get_hetero(name: str) -> HeteroChip:
    """The named heterogeneous chip (case-insensitive, memoized)."""
    key = name.lower()
    chip = _HETERO_CACHE.get(key)
    if chip is not None:
        return chip
    try:
        builder = _HETERO_BUILDERS[key]
    except KeyError:
        raise KeyError(
            f"unknown hetero chip {name!r}; known: {sorted(_HETERO_BUILDERS)}"
        ) from None
    chip = builder()
    _HETERO_CACHE[key] = chip
    return chip


def list_hetero() -> List[str]:
    return sorted(_HETERO_BUILDERS)


def is_hetero(name: str) -> bool:
    return name.lower() in _HETERO_BUILDERS


def expand_node_archs(name: str) -> List[str]:
    """Fleet helper: the registry arch names one node of ``name`` uses.

    A plain architecture maps to itself; a heterogeneous chip expands to
    one entry per cluster (``"biglittle"`` -> ``["biglittle.big",
    "biglittle.little"]``), so a hetero node contributes each cluster as
    an independently schedulable (arch, level) space.
    """
    key = name.lower()
    if key in _HETERO_BUILDERS:
        return [f"{key}.{spec.name}" for spec in get_hetero(key).clusters]
    return [key]


def hetero_fingerprint(chip: HeteroChip) -> Dict[str, object]:
    """JSON-able fingerprint of a hetero chip, per-cluster specs included.

    Consumed by :func:`repro.check.goldens.model_fingerprint`: any
    change to a cluster's architecture, bandwidth share, or the chip's
    power/area budget must invalidate golden snapshots.
    """
    from repro.sim.runcache import _arch_fingerprint

    return {
        "name": chip.name,
        "clusters": [
            {
                "name": spec.name,
                "bandwidth_share": spec.bandwidth_share,
                "core_power_w": spec.core_power_w,
                "core_area_mm2": spec.core_area_mm2,
                "arch": _arch_fingerprint(spec.arch),
            }
            for spec in chip.clusters
        ],
        "budget": (
            dataclasses.asdict(chip.budget) if chip.budget is not None else None
        ),
    }


register_hetero("biglittle", big_little)
