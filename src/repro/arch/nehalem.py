"""Intel Nehalem Core i7 description (paper §II-B, Fig. 5).

Quad-core, 2-way SMT.  Six issue ports fed from a 36-entry unified
reservation station: ports 0/1/5 take computational instructions
(integer ALU on all three, FP multiply/divide on 0, FP add on 1,
branches on 5), port 2 takes loads, and ports 3/4 take the
store-address and store-data micro-ops of a store.

Since ports are not tied to a single instruction type, the metric is
computed over per-port issue fractions with the uniform 1/6 ideal
(Eq. 3).  Dispatch-held is obtained from ``RAT_STALLS`` with the
``rob_read_port`` unit mask.
"""

from __future__ import annotations

from repro.arch.classes import InstrClass
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.partition import SmtPartition
from repro.arch.ports import IssuePort, PortTopology


def nehalem(cores_per_chip: int = 4) -> Architecture:
    """Build the Nehalem Core i7 965 architecture model."""
    topology = PortTopology(
        ports=[
            IssuePort("P0", 1.0),
            IssuePort("P1", 1.0),
            IssuePort("P2", 1.0),
            IssuePort("P3", 1.0),
            IssuePort("P4", 1.0),
            IssuePort("P5", 1.0),
        ],
        routing={
            # Integer ALU instructions can issue on ports 0, 1 and 5.
            InstrClass.FX: {"P0": 1 / 3, "P1": 1 / 3, "P5": 1 / 3},
            # FP multiply/divide on port 0, FP add on port 1.
            InstrClass.VS: {"P0": 0.5, "P1": 0.5},
            # Loads issue through port 2 only.
            InstrClass.LOAD: {"P2": 1.0},
            # A store cracks into store-address (P3) + store-data (P4).
            InstrClass.STORE: {"P3": 0.5, "P4": 0.5},
            # Branches issue through port 5.
            InstrClass.BRANCH: {"P5": 1.0},
        },
    )
    partition = SmtPartition(
        fetch_width=4,
        dispatch_width=4,
        issue_width=6,
        queue_entries=36,   # unified reservation station
        rob_entries=128,
        # The RS is competitively shared (slightly better than a hard
        # half-split for one thread); the ROB is statically partitioned
        # at SMT2.
        queue_share={1: 1.0, 2: 0.55},
        rob_share={1: 1.0, 2: 0.5},
        smt1_boost=1.0,
    )
    caches = CacheGeometry(
        l1d_kb=32.0,
        l2_kb=256.0,
        l3_mb=8.0,
        line_bytes=64,
        lat_l2=10.0,
        lat_l3=38.0,
        lat_mem=200.0,
        mem_bandwidth_gbps=25.0,
        numa_extra_cycles=0.0,  # single-socket system in the paper
    )
    return Architecture(
        name="Nehalem",
        description="Intel Core i7 965: 4-core, 2-way SMT, untyped issue ports (paper Fig. 5)",
        frequency_ghz=3.2,
        cores_per_chip=cores_per_chip,
        smt_levels=(1, 2),
        topology=topology,
        partition=partition,
        caches=caches,
        branch_penalty=17.0,
        metric_space="port",
        dispatch_held_event="RAT_STALLS:rob_read_port",
    )
