"""A parametric generic core (paper Fig. 3).

Section V of the paper notes the metric "can be ported to other
architectures in similar ways" once the issue ports and functional
units of the target are understood.  This builder exists for exactly
that workflow (see ``examples/port_the_metric.py``): describe the
ports, pick the partitioning policy, and the generic Eq. 1 metric and
the simulator both work unchanged.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.arch.classes import InstrClass
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.partition import SmtPartition
from repro.arch.ports import IssuePort, PortTopology


DEFAULT_ROUTING: Dict[InstrClass, Dict[str, float]] = {
    InstrClass.LOAD: {"LS": 1.0},
    InstrClass.STORE: {"LS": 1.0},
    InstrClass.BRANCH: {"BR": 1.0},
    InstrClass.FX: {"FX": 1.0},
    InstrClass.VS: {"VS": 1.0},
}


def generic_core(
    name: str = "GenericCore",
    *,
    cores_per_chip: int = 4,
    smt_levels: Tuple[int, ...] = (1, 2),
    port_capacities: Optional[Mapping[str, float]] = None,
    routing: Optional[Dict[InstrClass, Dict[str, float]]] = None,
    fetch_width: int = 4,
    dispatch_width: int = 4,
    issue_width: int = 6,
    queue_entries: int = 32,
    rob_entries: int = 96,
    frequency_ghz: float = 3.0,
    metric_space: str = "port",
    ideal_class_fractions: Optional[Tuple[float, ...]] = None,
    caches: Optional[CacheGeometry] = None,
    branch_penalty: float = 15.0,
) -> Architecture:
    """Build a custom architecture from port/width parameters.

    By default this is a modest 4-wide, 2-way-SMT core with typed ports
    (one LS, one FX, one VS, one BR) — deliberately different from both
    paper machines so the porting example is a real exercise.
    """
    capacities = dict(port_capacities or {"LS": 2.0, "FX": 2.0, "VS": 1.0, "BR": 1.0})
    topology = PortTopology(
        ports=[IssuePort(n, c) for n, c in capacities.items()],
        routing=routing or DEFAULT_ROUTING,
    )
    max_level = max(smt_levels)
    shares = {level: 1.0 / level for level in smt_levels}
    partition = SmtPartition(
        fetch_width=fetch_width,
        dispatch_width=dispatch_width,
        issue_width=issue_width,
        queue_entries=queue_entries,
        rob_entries=rob_entries,
        queue_share=shares,
        rob_share=dict(shares),
        smt1_boost=1.05 if max_level > 1 else 1.0,
    )
    if caches is None:
        caches = CacheGeometry(
            l1d_kb=32.0,
            l2_kb=256.0,
            l3_mb=2.0 * cores_per_chip,
            line_bytes=64,
            lat_l2=10.0,
            lat_l3=30.0,
            lat_mem=250.0,
            mem_bandwidth_gbps=30.0,
            numa_extra_cycles=100.0,
        )
    return Architecture(
        name=name,
        description=f"generic parametric core ({len(capacities)} port groups)",
        frequency_ghz=frequency_ghz,
        cores_per_chip=cores_per_chip,
        smt_levels=tuple(sorted(smt_levels)),
        topology=topology,
        partition=partition,
        caches=caches,
        branch_penalty=branch_penalty,
        metric_space=metric_space,
        ideal_class_fractions=ideal_class_fractions,
        dispatch_held_event="DISP_HELD_RES",
    )
