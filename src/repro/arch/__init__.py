"""Processor architecture descriptions.

This package captures the part of a microarchitecture that the paper's
SMT-selection metric depends on: the instruction classes, the issue-port
topology (paper Figs. 3-5), how resources are partitioned across SMT
levels, and the memory hierarchy geometry the simulator needs.
"""

from repro.arch.classes import InstrClass, Mix, CLASS_ORDER, SPIN_LOOP_MIX
from repro.arch.ports import IssuePort, PortTopology
from repro.arch.partition import SmtPartition, ThreadResources
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.power5 import power5
from repro.arch.power7 import power7
from repro.arch.nehalem import nehalem
from repro.arch.armsmt import armsmt
from repro.arch.generic import generic_core
from repro.arch.registry import get_architecture, list_architectures, register_architecture
from repro.arch.hetero import (
    ClusterSpec,
    HeteroChip,
    PowerAreaBudget,
    big_little,
    cluster_architecture,
    expand_node_archs,
    get_hetero,
    is_hetero,
    list_hetero,
    register_hetero,
)

__all__ = [
    "InstrClass",
    "Mix",
    "CLASS_ORDER",
    "SPIN_LOOP_MIX",
    "IssuePort",
    "PortTopology",
    "SmtPartition",
    "ThreadResources",
    "Architecture",
    "CacheGeometry",
    "power5",
    "power7",
    "nehalem",
    "armsmt",
    "generic_core",
    "get_architecture",
    "list_architectures",
    "register_architecture",
    "ClusterSpec",
    "HeteroChip",
    "PowerAreaBudget",
    "big_little",
    "cluster_architecture",
    "expand_node_archs",
    "get_hetero",
    "is_hetero",
    "list_hetero",
    "register_hetero",
]
