"""IBM POWER7 description (paper §II-A, Fig. 4).

Eight-core chip, 4-way SMT.  A core fetches up to 8 instructions,
dispatches up to 6 and issues up to 8 per cycle.  Issue ports are tied
to instruction type: each of the two unified queues (UQ0/UQ1) issues up
to one load/store, one fixed-point and one vector-scalar instruction per
cycle, plus one branch port and one CR port.  Following the paper, the
CR unit is folded into the branch unit, giving the 7-slot ideal mix of
Eq. 2: 1/7 loads, 1/7 stores, 1/7 branches, 2/7 FX and 2/7 VS.

The dispatcher-held condition is counted by ``PM_DISP_CLB_HELD_RES``.
"""

from __future__ import annotations

from repro.arch.classes import InstrClass
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.partition import SmtPartition
from repro.arch.ports import IssuePort, PortTopology, single_class_routing


def power7(cores_per_chip: int = 8) -> Architecture:
    """Build the POWER7 architecture model.

    ``cores_per_chip`` is configurable so tests can use small chips; the
    paper's system has 8 cores per chip.
    """
    topology = PortTopology(
        ports=[
            # Two unified queues, each issuing one LS, one FX, one VS per
            # cycle; modelled as class ports with capacity 2.  Loads and
            # stores share the LS ports but are tracked separately by the
            # metric (separate load/store buffers, paper §II-A).
            IssuePort("LS", 2.0),
            IssuePort("FX", 2.0),
            IssuePort("VS", 2.0),
            # Branch port with the CR port folded in (paper treats CR +
            # branch as one execution unit).
            IssuePort("BR", 1.0),
        ],
        routing=single_class_routing(
            {
                InstrClass.LOAD: "LS",
                InstrClass.STORE: "LS",
                InstrClass.BRANCH: "BR",
                InstrClass.FX: "FX",
                InstrClass.VS: "VS",
            }
        ),
    )
    partition = SmtPartition(
        fetch_width=8,
        dispatch_width=6,
        issue_width=8,
        queue_entries=48,   # two 24-entry unified queues
        rob_entries=120,    # global completion table, in instruction terms
        # POWER7 partitions the unified queues between thread pairs at
        # SMT2/SMT4; a lone thread at SMT1 gets everything plus
        # structures disabled at higher levels.
        queue_share={1: 1.0, 2: 0.5, 4: 0.25},
        rob_share={1: 1.0, 2: 0.5, 4: 0.25},
        smt1_boost=1.1,
    )
    caches = CacheGeometry(
        l1d_kb=32.0,
        l2_kb=256.0,
        l3_mb=4.0 * cores_per_chip,  # 4 MB local eDRAM L3 region per core
        line_bytes=128,
        lat_l2=8.0,
        lat_l3=27.0,
        lat_mem=320.0,
        mem_bandwidth_gbps=68.0,
        numa_extra_cycles=130.0,
    )
    return Architecture(
        name="POWER7",
        description="IBM POWER7: 8-core, 4-way SMT, typed issue ports (paper Fig. 4)",
        frequency_ghz=3.8,
        cores_per_chip=cores_per_chip,
        smt_levels=(1, 2, 4),
        topology=topology,
        partition=partition,
        caches=caches,
        branch_penalty=16.0,
        metric_space="class",
        ideal_class_fractions=(1 / 7, 1 / 7, 1 / 7, 2 / 7, 2 / 7),
        dispatch_held_event="PM_DISP_CLB_HELD_RES",
    )
