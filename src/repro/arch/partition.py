"""SMT resource partitioning rules.

When a core runs more hardware contexts, per-context front-end bandwidth
and buffering shrink: fetch/dispatch slots are shared, and structures
such as the issue queues and reorder buffer are partitioned (POWER7) or
competitively shared (Nehalem).  On POWER7 a core running a single
software thread automatically reverts to SMT1 mode, giving that thread
access to resources that would be partitioned or disabled at higher
levels (paper §II-A) — which is why measuring the metric at SMT1 cannot
see SMT4 contention (paper §IV-B).

:class:`SmtPartition` turns an SMT level into the effective per-thread
resources the simulator's core models consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

import numpy as np


@dataclass(frozen=True)
class ThreadResources:
    """Effective per-hardware-thread resources at a given SMT level."""

    smt_level: int
    fetch_width: float      # instructions fetched per cycle for this thread (average share)
    dispatch_width: float   # dispatch slots per cycle available to this thread (average share)
    queue_entries: float    # issue-queue entries available to this thread
    rob_entries: float      # reorder-buffer entries available to this thread
    ilp_scale: float        # scaling applied to the workload's exploitable ILP

    def __post_init__(self):
        for name in ("fetch_width", "dispatch_width", "queue_entries", "rob_entries", "ilp_scale"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be > 0 at SMT{self.smt_level}, got {value}")


@dataclass(frozen=True)
class SmtPartition:
    """Core-wide front-end widths plus per-level partitioning policy.

    ``queue_share`` / ``rob_share`` give the fraction of the structure a
    single thread can occupy at each SMT level (1.0 at SMT1; 0.5 under a
    hard split at SMT2; slightly above the hard split for competitively
    shared structures).  The ILP window scale follows the square-root
    law relating instruction-window size to extractable ILP: a thread
    confined to a quarter of the window extracts about half the ILP.
    """

    fetch_width: int
    dispatch_width: int
    issue_width: int
    queue_entries: int
    rob_entries: int
    queue_share: Mapping[int, float]
    rob_share: Mapping[int, float]
    smt1_boost: float = 1.0  # extra single-thread resources enabled only at SMT1

    def __post_init__(self):
        for name in ("fetch_width", "dispatch_width", "issue_width", "queue_entries", "rob_entries"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0, got {getattr(self, name)}")
        if set(self.queue_share) != set(self.rob_share):
            raise ValueError("queue_share and rob_share must cover the same SMT levels")
        for level, share in {**dict(self.queue_share)}.items():
            if not (0.0 < share <= 1.0):
                raise ValueError(f"queue share at SMT{level} must be in (0, 1], got {share}")
        if self.smt1_boost < 1.0:
            raise ValueError(f"smt1_boost must be >= 1, got {self.smt1_boost}")

    @property
    def smt_levels(self) -> Tuple[int, ...]:
        return tuple(sorted(self.queue_share))

    def thread_resources(self, smt_level: int) -> ThreadResources:
        """Per-thread effective resources with ``smt_level`` contexts active."""
        if smt_level not in self.queue_share:
            raise ValueError(
                f"SMT{smt_level} not supported; levels: {self.smt_levels}"
            )
        q_share = float(self.queue_share[smt_level])
        r_share = float(self.rob_share[smt_level])
        boost = self.smt1_boost if smt_level == 1 else 1.0
        window = self.rob_entries * r_share * boost
        baseline_window = float(self.rob_entries)
        # sqrt window-size -> ILP law, normalised so a full window gives 1.0.
        ilp_scale = float(np.sqrt(window / baseline_window))
        return ThreadResources(
            smt_level=smt_level,
            fetch_width=self.fetch_width / smt_level,
            dispatch_width=self.dispatch_width / smt_level,
            queue_entries=self.queue_entries * q_share * boost,
            rob_entries=window,
            ilp_scale=ilp_scale,
        )

    def core_dispatch_width(self, smt_level: int) -> float:
        """Total dispatch bandwidth with ``smt_level`` contexts active."""
        if smt_level not in self.queue_share:
            raise ValueError(f"SMT{smt_level} not supported; levels: {self.smt_levels}")
        return float(self.dispatch_width)

    def describe(self) -> Dict[int, ThreadResources]:
        return {level: self.thread_resources(level) for level in self.smt_levels}
