"""Instruction classes and instruction-mix vectors.

The paper reasons about five architecture-neutral instruction classes
(its POWER7 metric, Eq. 2, is written directly over them): loads,
stores, branches, fixed-point (integer) and vector-scalar (floating
point / SIMD).  A workload's *instruction mix* is a probability vector
over these classes; architectures map the classes onto issue ports.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Mapping, Union

import numpy as np

from repro.util.validation import check_probability_vector


class InstrClass(enum.IntEnum):
    """Architecture-neutral instruction classes (paper §II)."""

    LOAD = 0
    STORE = 1
    BRANCH = 2
    FX = 3  # fixed point / integer ALU
    VS = 4  # vector-scalar: floating point and SIMD

    @property
    def is_memory(self) -> bool:
        return self in (InstrClass.LOAD, InstrClass.STORE)


#: Canonical ordering used for every mix vector in the package.
CLASS_ORDER = tuple(InstrClass)
N_CLASSES = len(CLASS_ORDER)


class Mix:
    """An immutable instruction-mix vector over :data:`CLASS_ORDER`.

    Mixes are validated to be probability vectors at construction.  The
    class supports the operations the simulator needs: blending (for
    spin-loop pollution of a base mix), per-class lookup, and conversion
    to/from numpy arrays.
    """

    __slots__ = ("_vec",)

    def __init__(self, values: Union[Mapping[InstrClass, float], Iterable[float]]):
        if isinstance(values, Mapping):
            vec = np.zeros(N_CLASSES, dtype=float)
            for klass, frac in values.items():
                vec[InstrClass(klass)] = float(frac)
        else:
            vec = np.asarray(list(values), dtype=float)
            if vec.shape != (N_CLASSES,):
                raise ValueError(
                    f"mix vector must have {N_CLASSES} entries "
                    f"({[c.name for c in CLASS_ORDER]}), got shape {vec.shape}"
                )
        self._vec = check_probability_vector("instruction mix", vec)
        self._vec.flags.writeable = False

    # -- constructors -------------------------------------------------
    @classmethod
    def from_counts(cls, counts: Mapping[InstrClass, float]) -> "Mix":
        """Build a mix from raw per-class instruction counts."""
        vec = np.zeros(N_CLASSES, dtype=float)
        for klass, count in counts.items():
            if count < 0:
                raise ValueError(f"negative count for {InstrClass(klass).name}: {count}")
            vec[InstrClass(klass)] = float(count)
        total = vec.sum()
        if total <= 0:
            raise ValueError("cannot build a mix from all-zero counts")
        return cls(vec / total)

    @classmethod
    def uniform(cls) -> "Mix":
        return cls(np.full(N_CLASSES, 1.0 / N_CLASSES))

    # -- accessors -----------------------------------------------------
    def __getitem__(self, klass: InstrClass) -> float:
        return float(self._vec[InstrClass(klass)])

    @property
    def vector(self) -> np.ndarray:
        """Read-only numpy view in :data:`CLASS_ORDER` order."""
        return self._vec

    @property
    def memory_fraction(self) -> float:
        return self[InstrClass.LOAD] + self[InstrClass.STORE]

    def as_dict(self) -> Dict[InstrClass, float]:
        return {klass: float(self._vec[klass]) for klass in CLASS_ORDER}

    # -- operations ----------------------------------------------------
    def blend(self, other: "Mix", weight: float) -> "Mix":
        """Return ``(1-weight)*self + weight*other``.

        Used to model spin-wait pollution: time spent in a spin loop
        replaces a fraction of the application's instruction stream with
        the spin loop's branch/load-heavy stream (paper §II: "an
        application that spends significant time spinning on locks will
        have a large percentage of branch instructions").
        """
        if not (0.0 <= weight <= 1.0):
            raise ValueError(f"blend weight must be in [0, 1], got {weight}")
        return Mix((1.0 - weight) * self._vec + weight * other.vector)

    def deviation_from(self, ideal: np.ndarray) -> float:
        """Euclidean distance to an ideal vector (first SMTsm factor)."""
        ideal = np.asarray(ideal, dtype=float)
        if ideal.shape != self._vec.shape:
            raise ValueError(
                f"ideal vector shape {ideal.shape} != mix shape {self._vec.shape}"
            )
        return float(np.sqrt(np.sum((self._vec - ideal) ** 2)))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mix):
            return NotImplemented
        return bool(np.allclose(self._vec, other._vec, atol=1e-12))

    def __hash__(self) -> int:
        return hash(tuple(np.round(self._vec, 12)))

    def __repr__(self) -> str:
        parts = ", ".join(f"{c.name}={self._vec[c]:.3f}" for c in CLASS_ORDER)
        return f"Mix({parts})"


#: The instruction stream of a test-and-test-and-set spin loop: a load of
#: the lock word, a compare (FX), and a conditional branch, repeated.
SPIN_LOOP_MIX = Mix(
    {
        InstrClass.LOAD: 0.35,
        InstrClass.STORE: 0.02,
        InstrClass.BRANCH: 0.38,
        InstrClass.FX: 0.25,
        InstrClass.VS: 0.0,
    }
)
