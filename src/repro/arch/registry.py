"""Architecture registry: look up machine models by name."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.arch.machine import Architecture
from repro.arch.armsmt import armsmt
from repro.arch.generic import generic_core
from repro.arch.nehalem import nehalem
from repro.arch.power5 import power5
from repro.arch.power7 import power7

_BUILDERS: Dict[str, Callable[[], Architecture]] = {
    "power5": power5,
    "power7": power7,
    "nehalem": nehalem,
    "armsmt": armsmt,
    "generic": generic_core,
}


def register_architecture(name: str, builder: Callable[[], Architecture]) -> None:
    """Register a custom architecture builder under ``name``.

    Raises if the name is taken — shadowing a built-in machine silently
    would make experiment configs ambiguous.
    """
    key = name.lower()
    if key in _BUILDERS:
        raise ValueError(f"architecture {name!r} is already registered")
    _BUILDERS[key] = builder


def get_architecture(name: str) -> Architecture:
    """Build the named architecture (case-insensitive)."""
    key = name.lower()
    try:
        builder = _BUILDERS[key]
    except KeyError:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(_BUILDERS)}"
        ) from None
    return builder()


def list_architectures() -> List[str]:
    return sorted(_BUILDERS)
