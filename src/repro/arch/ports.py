"""Issue-port topology: how instruction classes map onto issue ports.

The SMT-selection metric's first factor is the deviation of the
workload's issue-port usage from an *ideal SMT instruction mix* — a mix
proportional to the number and types of the processor's issue ports
(paper §II).  The topology therefore has to answer two questions:

* simulation: given a class mix, what is the demand placed on each
  port, and what per-port capacity limits aggregate issue throughput?
* measurement: given per-class issue counts, what per-port (or
  per-class) fractions does the metric compare against its ideal
  vector?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.arch.classes import CLASS_ORDER, InstrClass, Mix, N_CLASSES


@dataclass(frozen=True)
class IssuePort:
    """A single issue port (or a fused group of identical ports).

    ``capacity`` is the number of instructions the port (group) can
    issue per cycle; e.g. POWER7's two unified-queue load/store ports
    are modelled as one ``LS`` port with capacity 2.
    """

    name: str
    capacity: float

    def __post_init__(self):
        if self.capacity <= 0:
            raise ValueError(f"port {self.name!r} capacity must be > 0, got {self.capacity}")


class PortTopology:
    """Ports plus the class→port routing matrix.

    ``routing[p, c]`` is the fraction of class-``c`` instructions that
    issue through port ``p``; columns must each sum to 1 (every
    instruction issues through exactly one port in expectation; stores
    that crack into address+data micro-ops split their weight across the
    two ports, as on Nehalem).
    """

    def __init__(self, ports: Sequence[IssuePort], routing: Dict[InstrClass, Dict[str, float]]):
        self.ports: Tuple[IssuePort, ...] = tuple(ports)
        if not self.ports:
            raise ValueError("a port topology needs at least one port")
        names = [p.name for p in self.ports]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate port names: {names}")
        self._index = {name: i for i, name in enumerate(names)}

        matrix = np.zeros((len(self.ports), N_CLASSES), dtype=float)
        for klass in CLASS_ORDER:
            if klass not in routing:
                raise ValueError(f"routing missing instruction class {klass.name}")
            row = routing[klass]
            total = 0.0
            for port_name, frac in row.items():
                if port_name not in self._index:
                    raise ValueError(f"unknown port {port_name!r} in routing for {klass.name}")
                if frac < 0:
                    raise ValueError(f"negative routing fraction for {klass.name}->{port_name}")
                matrix[self._index[port_name], klass] = frac
                total += frac
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"routing for {klass.name} must sum to 1, got {total} ({row})"
                )
        self._matrix = matrix
        self._matrix.flags.writeable = False
        self._capacity = np.array([p.capacity for p in self.ports], dtype=float)
        self._capacity.flags.writeable = False

    # -- simulation-facing API ----------------------------------------
    @property
    def n_ports(self) -> int:
        return len(self.ports)

    @property
    def port_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.ports)

    @property
    def capacities(self) -> np.ndarray:
        """Per-port issue capacity (instructions/cycle), read-only."""
        return self._capacity

    @property
    def routing_matrix(self) -> np.ndarray:
        """The (n_ports, n_classes) routing matrix, read-only."""
        return self._matrix

    def port_index(self, name: str) -> int:
        return self._index[name]

    def port_demand(self, mix: Mix) -> np.ndarray:
        """Expected per-port instructions per issued instruction."""
        return self._matrix @ mix.vector

    def port_fractions(self, mix: Mix) -> np.ndarray:
        """Fraction of issued instructions seen at each port.

        Equal to :meth:`port_demand` because routing columns sum to 1;
        kept as a separate name because the metric consumes *fractions*
        while the throughput model consumes *demand*.
        """
        return self.port_demand(mix)

    def saturation_scale(self, demand_per_cycle: np.ndarray) -> float:
        """Largest scale ``s <= 1`` so ``s * demand`` fits all ports.

        ``demand_per_cycle`` is per-port instructions/cycle requested by
        the co-running hardware threads; the return value is the fair
        throttle the issue stage applies when one port class saturates.
        """
        demand = np.asarray(demand_per_cycle, dtype=float)
        if demand.shape != self._capacity.shape:
            raise ValueError(
                f"demand shape {demand.shape} != ports shape {self._capacity.shape}"
            )
        with np.errstate(divide="ignore"):
            ratios = np.where(demand > 0, self._capacity / np.maximum(demand, 1e-300), np.inf)
        return float(min(1.0, ratios.min()))

    # -- metric-facing API --------------------------------------------
    def ideal_port_fractions(self) -> np.ndarray:
        """The ideal SMT mix expressed per port: capacity-proportional."""
        return self._capacity / self._capacity.sum()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ports = ", ".join(f"{p.name}x{p.capacity:g}" for p in self.ports)
        return f"PortTopology({ports})"


def single_class_routing(assignments: Dict[InstrClass, str]) -> Dict[InstrClass, Dict[str, float]]:
    """Routing where each class issues through exactly one port (POWER7 style)."""
    return {klass: {port: 1.0} for klass, port in assignments.items()}
