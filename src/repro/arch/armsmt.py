"""ARM-style 2-way SMT core description (SYNPA-flavored).

Navarro et al.'s SYNPA line of work studies 2-way SMT ARM processors
whose issue ports are *competitively arbitrated* between the two
hardware threads rather than statically partitioned.  This model
captures that shape: a narrow out-of-order ARMv8 server core with

* a 3-wide dispatch stage (narrower than Nehalem's 4 and POWER7's 6),
* four issue ports that instruction classes *share* — branches arbitrate
  against integer ALU ops for port ``I0``, loads and stores arbitrate
  for the single load/store pipe ``LS``,
* two hardware threads per core, with the issue queue competitively
  shared (a lone thread can claim a bit more than half) and the ROB
  hard-split at SMT2.

Since ports are shared across classes, the metric is computed over
per-port issue fractions against the capacity-proportional ideal
(Eq. 3 generalized), exactly like Nehalem.  The dispatch-held condition
maps onto the ARM PMUv3 backend-stall event.
"""

from __future__ import annotations

from repro.arch.classes import InstrClass
from repro.arch.machine import Architecture, CacheGeometry
from repro.arch.partition import SmtPartition
from repro.arch.ports import IssuePort, PortTopology


def armsmt(cores_per_chip: int = 8) -> Architecture:
    """Build the ARMv8-style 2-way SMT architecture model.

    ``cores_per_chip`` is configurable so tests and heterogeneous
    cluster builders can use small chips; the reference system has 8
    cores per chip.
    """
    topology = PortTopology(
        ports=[
            # Integer ALU + branch port: branches steal issue slots from
            # integer work (competitive arbitration, not a private BR
            # port as on POWER7).
            IssuePort("I0", 1.0),
            # Second integer ALU port.
            IssuePort("I1", 1.0),
            # FP/SIMD (NEON/SVE-style) pipe.
            IssuePort("V0", 1.0),
            # Single shared load/store pipe: loads and stores arbitrate
            # for the same AGU/issue slot.
            IssuePort("LS", 1.0),
        ],
        routing={
            InstrClass.FX: {"I0": 0.5, "I1": 0.5},
            InstrClass.BRANCH: {"I0": 1.0},
            InstrClass.VS: {"V0": 1.0},
            InstrClass.LOAD: {"LS": 1.0},
            InstrClass.STORE: {"LS": 1.0},
        },
    )
    partition = SmtPartition(
        fetch_width=4,
        dispatch_width=3,
        issue_width=4,
        queue_entries=28,
        rob_entries=96,
        # The issue queue is competitively shared between the two
        # hardware threads (slightly better than a hard half-split for a
        # lone thread); the ROB is statically partitioned at SMT2.
        queue_share={1: 1.0, 2: 0.58},
        rob_share={1: 1.0, 2: 0.5},
        smt1_boost=1.0,
    )
    caches = CacheGeometry(
        l1d_kb=64.0,
        l2_kb=512.0,
        l3_mb=1.0 * cores_per_chip,  # 1 MB shared SLC slice per core
        line_bytes=64,
        lat_l2=9.0,
        lat_l3=33.0,
        lat_mem=210.0,
        mem_bandwidth_gbps=42.0,
        numa_extra_cycles=0.0,
    )
    return Architecture(
        name="ARMv8-SMT2",
        description=(
            "ARMv8 server core, 2-way SMT, shared competitively-arbitrated "
            "issue ports (SYNPA-style)"
        ),
        frequency_ghz=2.6,
        cores_per_chip=cores_per_chip,
        smt_levels=(1, 2),
        topology=topology,
        partition=partition,
        caches=caches,
        branch_penalty=13.0,
        metric_space="port",
        dispatch_held_event="STALL_BACKEND",
    )
