#!/usr/bin/env python
"""Online SMT tuning of a phase-changing application (paper §V).

An application alternates between an SMT-friendly compute phase (EP)
and a lock-contended phase (SPECjbb-contention).  The optimizer samples
SMTsm at the highest SMT level, switches the system down via smtctl
when the metric crosses the fitted thresholds, and periodically
re-probes.  Compare against the static policies.

    python examples/online_tuning.py
"""

from repro.experiments import online_optimizer


def main() -> None:
    result = online_optimizer.run(seed=11)
    print(result.render())
    print("\ntimeline (level per decision interval):")
    line = []
    for step in result.adaptive.steps:
        marker = f"{step.smt_level}"
        if step.switched_to is not None:
            marker += f"->{step.switched_to}"
        line.append(f"[{step.phase_name[:2]}:{marker}]")
    print(" ".join(line))
    default = result.static_walls[4]
    print(f"\nadaptive vs default (static SMT4): "
          f"{default / result.adaptive_wall:.2f}x faster")


if __name__ == "__main__":
    main()
