#!/usr/bin/env python
"""Quickstart: measure SMTsm for a workload and pick the best SMT level.

Runs a multithreaded application on the simulated 8-core POWER7 at its
default (highest) SMT level, reads the hardware counters, evaluates the
SMT-selection metric, and then *verifies* the recommendation by actually
running every SMT level over the same work.

    python examples/quickstart.py [workload-name]
"""

import sys

from repro.arch import power7
from repro.core.metric import smtsm_from_run
from repro.core.predictor import SmtPredictor
from repro.sim.engine import RunSpec, simulate_run
from repro.simos import SystemSpec
from repro.util.tables import format_table
from repro.workloads import get_workload

#: A POWER7 threshold in the paper's recommended region (§IV-A); fit
#: your own with examples/characterize_suite.py.
THRESHOLD = 0.07


def main(workload_name: str = "SSCA2") -> None:
    system = SystemSpec(power7(), n_chips=1)
    workload = get_workload(workload_name)
    print(f"workload: {workload.name} - {workload.description}")
    print(f"system:   {system.arch.name}, {system.total_cores} cores, "
          f"SMT levels {system.arch.smt_levels}\n")

    # 1. Run at the default (highest) SMT level and measure the metric.
    default_level = system.arch.max_smt
    run = simulate_run(
        RunSpec(system, default_level, workload.stream, workload.sync, seed=1)
    )
    metric = smtsm_from_run(run)
    print(f"SMTsm @SMT{default_level} = {metric.value:.4f}")
    print(f"  mix deviation     = {metric.mix_deviation:.4f}")
    print(f"  dispatch held     = {metric.dispatch_held:.4f}")
    print(f"  wall/avg CPU time = {metric.scalability_ratio:.4f}\n")

    # 2. Let the predictor recommend a level.
    predictor = SmtPredictor(threshold=THRESHOLD, high_level=default_level, low_level=1)
    recommended = predictor.recommend(metric.value)
    print(f"threshold {THRESHOLD}: recommend SMT{recommended}\n")

    # 3. Verify by running the same work at every level.
    rows = []
    best_level, best_perf = None, 0.0
    for level in system.arch.smt_levels:
        result = simulate_run(
            RunSpec(system, level, workload.stream, workload.sync, seed=1)
        )
        rows.append([f"SMT{level}", result.n_threads, result.wall_time_s,
                     result.performance / 1e9])
        if result.performance > best_perf:
            best_level, best_perf = level, result.performance
    print(format_table(
        ["level", "threads", "wall time (s)", "useful Ginstr/s"], rows,
        title="ground truth (same work at every level)",
    ))
    verdict = "CORRECT" if (recommended == best_level or (
        recommended != default_level and best_level != default_level)) else "WRONG"
    print(f"\nbest level: SMT{best_level}  ->  recommendation was {verdict}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "SSCA2")
