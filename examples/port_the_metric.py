#!/usr/bin/env python
"""Port SMTsm to a new architecture (paper §V: "the formula must first
be adapted to the target architecture").

Steps, exactly as the paper prescribes:

1. describe the target's issue ports and functional units — here a
   fictional 4-wide, 2-way-SMT core with one load/store port pair, two
   FX ports, one VS port and a branch port;
2. the ideal SMT mix falls out of the port topology (capacity-
   proportional), and Eq. 1 works unchanged;
3. "run a representative set of workloads, recording the SMT speedups
   and the observed SMTsm metric values", then fit the threshold with
   Gini impurity and/or the PPI method.

    python examples/port_the_metric.py
"""

from repro.arch import generic_core
from repro.arch.classes import InstrClass
from repro.core.predictor import SmtPredictor
from repro.core.thresholds import best_ppi_threshold, optimal_threshold_range
from repro.experiments.runner import run_catalog, scatter_from_runs
from repro.simos import SystemSpec
from repro.workloads import all_workloads

#: Representative training set spanning the behaviour axes.
TRAINING_SET = (
    "EP", "Blackscholes", "BT", "CG", "Fluidanimate", "SPECjbb",
    "Stream", "Swim", "Equake", "SSCA2", "SPECjbb_contention", "Dedup",
    "IS", "freqmine", "Streamcluster", "canneal",
)


def main() -> None:
    # 1-2. Describe the machine; the ideal mix is derived from the ports.
    arch = generic_core(
        "Fictional4W",
        cores_per_chip=6,
        smt_levels=(1, 2),
        port_capacities={"LS": 2.0, "FX": 2.0, "VS": 1.0, "BR": 1.0},
        fetch_width=4, dispatch_width=4, issue_width=6,
    )
    system = SystemSpec(arch, n_chips=1)
    print(f"architecture: {arch.name} ({arch.description})")
    labels = arch.metric_labels()
    ideal = arch.ideal_vector()
    print("ideal SMT mix:",
          ", ".join(f"{l}={v:.3f}" for l, v in zip(labels, ideal)), "\n")

    # 3. Characterize the training workloads at both SMT levels.
    specs = all_workloads()
    runs = run_catalog(system, {n: specs[n] for n in TRAINING_SET}, (1, 2), seed=23)
    scatter = scatter_from_runs(
        runs, title=f"{arch.name}: SMT2/SMT1 speedup vs SMTsm@SMT2",
        measure_level=2, high_level=2, low_level=1,
    )
    print(scatter.render())

    # 4. Fit the threshold both ways and compare.
    metrics, speedups = scatter.metrics(), scatter.speedups()
    lo, hi, impurity = optimal_threshold_range(metrics, speedups)
    ppi_t, ppi_gain = best_ppi_threshold(metrics, speedups)
    print(f"\nGini: optimal separator range [{lo:.4f}, {hi:.4f}], "
          f"min impurity {impurity:.3f}")
    print(f"PPI:  best threshold {ppi_t:.4f} "
          f"(expected improvement {ppi_gain:.1f}%)")

    predictor = scatter.fit_predictor("gini")
    print(f"\nfitted predictor: {predictor}")
    print(scatter.success())


if __name__ == "__main__":
    main()
