#!/usr/bin/env python
"""Characterize the full Table I suite on a chosen system.

Reproduces the §IV measurement protocol over every benchmark: run at
each SMT level with threads == contexts, report speedups, the metric
and its factors, and the fitted threshold — the data behind Figs. 6-10.

    python examples/characterize_suite.py [p7|p7x2|nehalem]
"""

import sys

from repro.core.metric import smtsm_from_run
from repro.experiments.runner import scatter_from_runs
from repro.experiments.systems import nehalem_runs, p7_runs
from repro.sim.results import speedup
from repro.util.tables import format_table


def main(which: str = "p7") -> None:
    if which == "nehalem":
        runs = nehalem_runs()
        high, low = 2, 1
    else:
        runs = p7_runs(n_chips=2 if which == "p7x2" else 1)
        high, low = 4, 1
    system = runs.system
    rows = []
    for name, by_level in runs.runs.items():
        m = smtsm_from_run(by_level[high])
        rows.append([
            name,
            speedup(by_level[high], by_level[low]),
            m.value, m.mix_deviation, m.dispatch_held, m.scalability_ratio,
            by_level[high].spin_fraction,
            by_level[high].mem_utilization,
        ])
    rows.sort(key=lambda r: r[2])
    print(format_table(
        ["benchmark", f"SMT{high}/SMT{low}", f"SMTsm@{high}", "mix dev",
         "disp held", "wall/cpu", "spin", "DRAM util"],
        rows,
        title=f"{system.arch.name} x{system.n_chips}: suite characterization",
    ))

    scatter = scatter_from_runs(
        runs, title="", measure_level=high, high_level=high, low_level=low
    )
    predictor = scatter.fit_predictor("gini")
    print(f"\nfitted threshold: {predictor.threshold:.4f}")
    print(scatter.success())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "p7")
