#!/usr/bin/env python
"""Sample SMTsm online with a perf-stat-like tool, costs included.

Shows the practical side of an online implementation: counter-group
multiplexing (only a handful of physical PMCs exist) and the sampling
overhead that both steals time from the application and pollutes the
mix counters.  A phase change mid-run demonstrates the windowed
tracker noticing it.

    python examples/perf_sampling.py
"""

from repro.core.metric import smtsm
from repro.core.phases import MetricTracker
from repro.counters.arch_groups import groups_for
from repro.counters.perfstat import PerfStat, PerfStatConfig
from repro.experiments.systems import p7_system
from repro.sim.online import SteadyApp
from repro.util.tables import format_table
from repro.workloads import get_workload
from repro.workloads.phases import Phase, PhasedWorkload


def main() -> None:
    system = p7_system()
    phased = PhasedWorkload(
        "ep-then-contend",
        (
            Phase(get_workload("EP"), 6e10),
            Phase(get_workload("SPECjbb_contention"), 6e10),
        ),
    )
    app = SteadyApp(system, 4, phased.phases[0].spec, phases=phased, seed=3)

    # Six physical PMCs -> the realistic POWER7 group rotation.
    schedule = groups_for(system.arch)
    cfg = PerfStatConfig(
        interval_s=0.1,
        overhead_per_sample_s=0.002,          # 2 ms per fork/exec+read
        tool_instructions_per_sample=4e6,
        multiplex=schedule,
        jitter_rel=0.01,
    )
    perf = PerfStat(cfg)
    tracker = MetricTracker()
    rows = []
    now = 0.0
    for _ in range(40):
        phase_label = app.phase_name
        [reading] = perf.measure(app, duration_s=cfg.interval_s)
        result = smtsm(reading.sample)
        changed = tracker.update(result)
        end = now + cfg.interval_s + cfg.overhead_per_sample_s
        rows.append([
            f"{now:.2f}-{end:.2f}",
            phase_label,
            result.value,
            tracker.estimate,
            "PHASE CHANGE" if changed else "",
        ])
        now = end
    print(format_table(
        ["window (s)", "phase", "SMTsm", "EWMA", "event"],
        rows,
        title=f"online SMTsm sampling ({schedule.n_groups} multiplexed groups, "
              f"{cfg.overhead_fraction * 100:.1f}% tool overhead)",
    ))


if __name__ == "__main__":
    main()
