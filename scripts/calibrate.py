"""Calibration driver: prints every catalog benchmark's speedups and
metric values so workload parameters can be tuned against the paper's
figures.  Not part of the library API; used during development and kept
for reproducibility of the calibration itself.

Usage: python scripts/calibrate.py [p7|nehalem|p7x2]
"""

import sys

from repro.arch import nehalem, power7
from repro.core.metric import smtsm_from_run
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.results import speedup
from repro.simos import SystemSpec
from repro.workloads import nehalem_catalog, power7_catalog


def report_p7(n_chips=1):
    system = SystemSpec(power7(), n_chips)
    print(f"POWER7 x{n_chips} ({system.total_cores} cores)")
    print(f"{'name':22s} {'s41':>6s} {'s21':>6s} {'s42':>6s} {'m@4':>7s} {'m@2':>7s} "
          f"{'dev4':>6s} {'dh4':>6s} {'scal4':>6s} side")
    for name, spec in power7_catalog().items():
        runs = {l: simulate_run(RunSpec(system, l, spec.stream, spec.sync, seed=11))
                for l in (1, 2, 4)}
        m4 = smtsm_from_run(runs[4])
        m2 = smtsm_from_run(runs[2])
        s41 = speedup(runs[4], runs[1])
        s21 = speedup(runs[2], runs[1])
        s42 = speedup(runs[4], runs[2])
        side = "L" if m4.value <= 0.07 else "R"
        ok = "ok" if (m4.value <= 0.07) == (s41 >= 1) else "MISS"
        print(f"{name:22s} {s41:6.2f} {s21:6.2f} {s42:6.2f} {m4.value:7.3f} {m2.value:7.3f} "
              f"{m4.mix_deviation:6.3f} {m4.dispatch_held:6.3f} {m4.scalability_ratio:6.2f} {side} {ok}")


def report_nehalem():
    system = SystemSpec(nehalem(), 1)
    print("Nehalem (4 cores)")
    print(f"{'name':24s} {'s21':>6s} {'m@2':>7s} {'m@1':>7s} {'dev2':>6s} {'dh2':>6s} {'scal2':>6s}")
    for name, spec in nehalem_catalog().items():
        runs = {l: simulate_run(RunSpec(system, l, spec.stream, spec.sync, seed=11))
                for l in (1, 2)}
        m2 = smtsm_from_run(runs[2])
        m1 = smtsm_from_run(runs[1])
        s21 = speedup(runs[2], runs[1])
        print(f"{name:24s} {s21:6.2f} {m2.value:7.3f} {m1.value:7.3f} "
              f"{m2.mix_deviation:6.3f} {m2.dispatch_held:6.3f} {m2.scalability_ratio:6.2f}")


if __name__ == "__main__":
    which = sys.argv[1] if len(sys.argv) > 1 else "p7"
    if which == "p7":
        report_p7(1)
    elif which == "p7x2":
        report_p7(2)
    else:
        report_nehalem()
