"""Record the robustness ablation's acceptance evidence.

Runs the full noise-ablation sweep (``repro.experiments.noise_ablation``)
for both architectures and writes ``BENCH_robustness.json`` at the repo
root.  The file carries per-severity decision accuracy for the naive
single-sample controller and the hardened EWMA+hysteresis controller,
plus an ``acceptance`` block evaluating the pinned claim on POWER7 at
the documented severity:

* the naive controller mispredicts at least 20% of its readings;
* the hardened controller's accuracy stays within 5 points of its own
  zero-noise accuracy.

``tests/experiments/test_noise_ablation.py`` asserts the same claim
live; this artifact is the committed record of the numbers.

    PYTHONPATH=src python scripts/bench_robustness.py
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import noise_ablation

NAIVE_MISPREDICT_FLOOR = 0.20
HARDENED_DROP_CEILING = 0.05


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_robustness.json)")
    args = parser.parse_args(argv)

    sweeps = {}
    for arch in ("p7", "nehalem"):
        start = time.perf_counter()
        result = noise_ablation.run(seed=args.seed, arch=arch)
        elapsed = time.perf_counter() - start
        print(f"=== {arch} ({elapsed:.1f}s) ===")
        print(result.render())
        print()
        sweeps[arch] = result

    pinned = sweeps["p7"]
    doc = pinned.cell(noise_ablation.DOCUMENTED_SEVERITY)
    zero = pinned.zero_noise()
    hardened_drop = zero.hardened_accuracy - doc.hardened_accuracy
    acceptance = {
        "arch": "p7",
        "documented_severity": noise_ablation.DOCUMENTED_SEVERITY,
        "naive_mispredict_rate": doc.naive_mispredict_rate,
        "naive_mispredict_floor": NAIVE_MISPREDICT_FLOOR,
        "naive_ok": doc.naive_mispredict_rate >= NAIVE_MISPREDICT_FLOOR,
        "hardened_accuracy": doc.hardened_accuracy,
        "hardened_zero_noise_accuracy": zero.hardened_accuracy,
        "hardened_drop": hardened_drop,
        "hardened_drop_ceiling": HARDENED_DROP_CEILING,
        "hardened_ok": hardened_drop <= HARDENED_DROP_CEILING,
    }
    print(f"acceptance (p7 @ severity {acceptance['documented_severity']}): "
          f"naive mispredicts {100 * doc.naive_mispredict_rate:.1f}% "
          f"(floor {100 * NAIVE_MISPREDICT_FLOOR:.0f}%) -> "
          f"{'OK' if acceptance['naive_ok'] else 'FAIL'}; "
          f"hardened drop {100 * hardened_drop:.1f}pt "
          f"(ceiling {100 * HARDENED_DROP_CEILING:.0f}pt) -> "
          f"{'OK' if acceptance['hardened_ok'] else 'FAIL'}")

    payload = {
        "seed": args.seed,
        "acceptance": acceptance,
        "sweeps": {arch: r.payload() for arch, r in sweeps.items()},
    }
    out = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_robustness.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0 if acceptance["naive_ok"] and acceptance["hardened_ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
