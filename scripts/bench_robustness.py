"""Record the robustness acceptance evidence (signal + serving planes).

Phase 1 — **signal robustness**: the full noise-ablation sweep
(``repro.experiments.noise_ablation``) for both architectures: per-
severity decision accuracy for the naive single-sample controller vs
the hardened EWMA+hysteresis controller, with the pinned claim on
POWER7 at the documented severity:

* the naive controller mispredicts at least 20% of its readings;
* the hardened controller's accuracy stays within 5 points of its own
  zero-noise accuracy.

Phase 2 — **serving robustness**: the serving-chaos sweep.  A live
2-worker server is driven at chaos severities 0.0/0.2/0.4
(:func:`repro.faults.chaos_profile`: hangs, crashes, slow jobs,
response corruption) by two clients: the *naive* baseline (single-shot
:class:`ServeClient` against a server with dispatch retries disabled —
no supervision anywhere) and the *resilient* stack (watchdog + server
retries + :class:`ResilientClient`).  The pinned claim: at severity
0.4 the resilient stack keeps availability >= 0.95 while the naive
baseline is recorded (and documented) worse; the settlement invariant
``serve.admitted == serve.settled`` holds at every severity; and no
worker process outlives its server.

Writes ``BENCH_robustness.json`` at the repo root;
``tests/experiments/test_noise_ablation.py`` and
``tests/serve/test_chaos.py`` assert the same claims live — this
artifact is the committed record of the numbers.

    PYTHONPATH=src python scripts/bench_robustness.py
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.experiments import noise_ablation

NAIVE_MISPREDICT_FLOOR = 0.20
HARDENED_DROP_CEILING = 0.05

SERVING_SEVERITIES = (0.0, 0.2, 0.4)
SERVING_REQUESTS = 40
SERVING_AVAILABILITY_FLOOR = 0.95
SERVING_WORKLOADS = ("EP", "CG", "IS", "BT", "LU_MPI", "FT_MPI")


def _drive_naive(host, port, n):
    """Single-shot client, one attempt per request, reconnect on EOF."""
    from repro.serve import ServeClient, ServeError

    answered = 0
    client = ServeClient(host, port, timeout_s=60.0)
    try:
        for i in range(n):
            workload = SERVING_WORKLOADS[i % len(SERVING_WORKLOADS)]
            try:
                result = client.predict(workload, seed=i)
                if result.get("workload") == workload:
                    answered += 1
            except ServeError:
                pass
            except (ConnectionError, OSError):
                try:
                    client.close()
                except OSError:
                    pass
                client = ServeClient(host, port, timeout_s=60.0)
    finally:
        client.close()
    return answered


def _drive_resilient(host, port, n):
    """The survival kit: retries + breaker, same traffic."""
    from repro.serve import (
        CircuitBreaker,
        ClientRetryPolicy,
        ResilientClient,
    )

    answered = 0
    client = ResilientClient(
        host, port,
        policy=ClientRetryPolicy(
            max_attempts=8, base_backoff_ms=10.0, max_backoff_ms=200.0,
        ),
        breaker=CircuitBreaker(failure_threshold=50),
        timeout_s=60.0, seed=1,
    )
    try:
        for i in range(n):
            workload = SERVING_WORKLOADS[i % len(SERVING_WORKLOADS)]
            try:
                result = client.predict(workload, seed=i)
                if result.get("workload") == workload:
                    answered += 1
            except Exception:
                pass
    finally:
        client.close()
    return answered


def _serving_run(severity, mode, seed):
    """One (severity, client-mode) cell: availability + invariants."""
    import multiprocessing

    from repro.faults import chaos_profile
    from repro.faults.retry import RetryPolicy
    from repro.obs import configure
    from repro.serve import BackgroundServer, ServeConfig

    tracer = configure(enabled=True)
    tracer.reset()
    chaos = chaos_profile(severity)
    kwargs = dict(
        workers=2, max_batch=8, max_linger_ms=10.0,
        hang_timeout_s=0.5,
        # The sweep measures availability, not quarantine policy: a big
        # budget keeps a crashy run from benching half the 2-worker
        # fleet (quarantine has its own tests).
        restart_budget=1000,
        hot_cache_size=0,               # every request must reach a worker
        chaos=chaos if chaos.any_chaos else None,
        session={"seed": seed, "use_cache": False, "threshold": 0.07},
    )
    if mode == "naive":
        # The documented-worse baseline: no dispatch retries either —
        # every injected fault that reaches a job reaches the client.
        kwargs["retry_policy"] = RetryPolicy(
            task_timeout_s=300.0, max_retries=0, backoff_s=0.01
        )
    bg = BackgroundServer(ServeConfig(**kwargs)).start()
    try:
        if mode == "naive":
            answered = _drive_naive(bg.host, bg.port, SERVING_REQUESTS)
        else:
            answered = _drive_resilient(bg.host, bg.port, SERVING_REQUESTS)
    finally:
        bg.stop()
    counters = tracer.counters()
    admitted = int(counters.get("serve.admitted", 0))
    settled = int(counters.get("serve.settled", 0))
    if admitted != settled:
        raise RuntimeError(
            f"settlement broken at severity {severity} ({mode}): "
            f"admitted={admitted} settled={settled}"
        )
    leftover = [
        p.name for p in multiprocessing.active_children()
        if p.name.startswith("repro-serve")
    ]
    if leftover:
        raise RuntimeError(
            f"worker processes outlived the server at severity "
            f"{severity} ({mode}): {leftover}"
        )
    configure(enabled=False)
    tracer.reset()
    return {
        "availability": answered / SERVING_REQUESTS,
        "answered": answered,
        "admitted": admitted,
        "settled": settled,
        "restarts": counters.get("serve.worker.restarts", 0.0),
        "hangs": counters.get("serve.watchdog.hangs", 0.0),
        "corrupt_responses": counters.get(
            "serve.worker.corrupt_responses", 0.0),
        "client_retries": counters.get("client.retries", 0.0),
    }


def serving_chaos_sweep(seed):
    """Phase 2: naive vs resilient availability across chaos severities."""
    rows = []
    for severity in SERVING_SEVERITIES:
        start = time.perf_counter()
        naive = _serving_run(severity, "naive", seed)
        resilient = _serving_run(severity, "resilient", seed)
        elapsed = time.perf_counter() - start
        rows.append({
            "severity": severity,
            "naive": naive,
            "resilient": resilient,
        })
        print(f"severity {severity:.1f}: "
              f"naive {100 * naive['availability']:.1f}% vs "
              f"resilient {100 * resilient['availability']:.1f}% "
              f"(restarts {naive['restarts']:g}/{resilient['restarts']:g}, "
              f"hangs {naive['hangs']:g}/{resilient['hangs']:g}; "
              f"{elapsed:.1f}s)")
    pinned = rows[-1]
    assert pinned["severity"] == SERVING_SEVERITIES[-1]
    acceptance = {
        "severity": pinned["severity"],
        "requests_per_run": SERVING_REQUESTS,
        "resilient_availability": pinned["resilient"]["availability"],
        "availability_floor": SERVING_AVAILABILITY_FLOOR,
        "resilient_ok": (
            pinned["resilient"]["availability"] >= SERVING_AVAILABILITY_FLOOR
        ),
        "naive_availability": pinned["naive"]["availability"],
        "naive_documented_worse": (
            pinned["naive"]["availability"]
            <= pinned["resilient"]["availability"]
        ),
        # The hard invariants raised on violation above, so reaching
        # this record means they held at every severity.
        "settlement_ok": True,
        "no_leaked_processes": True,
    }
    print(f"serving acceptance (severity {acceptance['severity']}): "
          f"resilient {100 * acceptance['resilient_availability']:.1f}% "
          f"(floor {100 * SERVING_AVAILABILITY_FLOOR:.0f}%) -> "
          f"{'OK' if acceptance['resilient_ok'] else 'FAIL'}; "
          f"naive {100 * acceptance['naive_availability']:.1f}%")
    return {"severities": rows, "acceptance": acceptance}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--skip-serving", action="store_true",
                        help="record only the signal-robustness phase")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_robustness.json)")
    args = parser.parse_args(argv)

    sweeps = {}
    for arch in ("p7", "nehalem"):
        start = time.perf_counter()
        result = noise_ablation.run(seed=args.seed, arch=arch)
        elapsed = time.perf_counter() - start
        print(f"=== {arch} ({elapsed:.1f}s) ===")
        print(result.render())
        print()
        sweeps[arch] = result

    pinned = sweeps["p7"]
    doc = pinned.cell(noise_ablation.DOCUMENTED_SEVERITY)
    zero = pinned.zero_noise()
    hardened_drop = zero.hardened_accuracy - doc.hardened_accuracy
    acceptance = {
        "arch": "p7",
        "documented_severity": noise_ablation.DOCUMENTED_SEVERITY,
        "naive_mispredict_rate": doc.naive_mispredict_rate,
        "naive_mispredict_floor": NAIVE_MISPREDICT_FLOOR,
        "naive_ok": doc.naive_mispredict_rate >= NAIVE_MISPREDICT_FLOOR,
        "hardened_accuracy": doc.hardened_accuracy,
        "hardened_zero_noise_accuracy": zero.hardened_accuracy,
        "hardened_drop": hardened_drop,
        "hardened_drop_ceiling": HARDENED_DROP_CEILING,
        "hardened_ok": hardened_drop <= HARDENED_DROP_CEILING,
    }
    print(f"acceptance (p7 @ severity {acceptance['documented_severity']}): "
          f"naive mispredicts {100 * doc.naive_mispredict_rate:.1f}% "
          f"(floor {100 * NAIVE_MISPREDICT_FLOOR:.0f}%) -> "
          f"{'OK' if acceptance['naive_ok'] else 'FAIL'}; "
          f"hardened drop {100 * hardened_drop:.1f}pt "
          f"(ceiling {100 * HARDENED_DROP_CEILING:.0f}pt) -> "
          f"{'OK' if acceptance['hardened_ok'] else 'FAIL'}")

    payload = {
        "seed": args.seed,
        "acceptance": acceptance,
        "sweeps": {arch: r.payload() for arch, r in sweeps.items()},
    }
    ok = acceptance["naive_ok"] and acceptance["hardened_ok"]

    if not args.skip_serving:
        print()
        print("=== serving chaos ===")
        serving = serving_chaos_sweep(args.seed)
        payload["serving"] = serving
        ok = ok and serving["acceptance"]["resilient_ok"]

    out = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_robustness.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
