"""CI smoke test: boot ``python -m repro serve``, round-trip, drain.

Launches the real CLI entry point as a subprocess (ephemeral port),
parses the ``serving on host:port`` line, performs a ``ping`` and a
handful of ``predict`` round-trips through
:class:`repro.serve.ServeClient`, then sends SIGINT and requires a
graceful, zero-exit shutdown whose settlement line balances
(``admitted == settled`` — no admitted request may leak through a
drain).  ``--workers N`` runs the same smoke against the sharded
worker pool; CI exercises both the in-process and ``--workers 2``
shapes.

``--chaos SPEC`` arms the serving-chaos harness in the server under
test (e.g. ``--chaos worker_hang``) and drives it with the
:class:`repro.serve.ResilientClient` instead: the smoke then *gates*
on availability >= 0.95 across the predict storm and on the same
settlement balance — the CI-facing acceptance of the supervision
plane (watchdog + retries) in one subprocess round-trip.

    PYTHONPATH=src python scripts/serve_smoke.py [--workers N] [--chaos SPEC]
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TIMEOUT_S = 60.0

WORKLOADS = ("EP", "CG", "IS", "BT")
CHAOS_PREDICTS = 40          # storm size under --chaos
CHAOS_AVAILABILITY_FLOOR = 0.95


def drive_healthy(host, port):
    """The classic smoke: naive client, every request must succeed."""
    from repro.serve import ServeClient

    with ServeClient(host, port, timeout_s=TIMEOUT_S) as client:
        assert client.ping() is True
        for workload in WORKLOADS:
            prediction = client.predict(workload)
            assert prediction["workload"] == workload
            assert prediction["recommended_level"] in (
                prediction["high_level"], prediction["low_level"]
            )
        print(f"predict {WORKLOADS[-1]} -> "
              f"SMT{prediction['recommended_level']} "
              f"(SMTsm {prediction['smtsm']:.5f})")


def drive_chaos(host, port):
    """The chaos smoke: resilient client, gate availability >= 0.95."""
    from repro.serve import CircuitBreaker, ClientRetryPolicy, ResilientClient

    client = ResilientClient(
        host, port,
        policy=ClientRetryPolicy(
            max_attempts=8, base_backoff_ms=10.0, max_backoff_ms=200.0,
        ),
        breaker=CircuitBreaker(failure_threshold=50),
        timeout_s=TIMEOUT_S, seed=1,
    )
    answered = 0
    try:
        assert client.ping() is True
        for i in range(CHAOS_PREDICTS):
            workload = WORKLOADS[i % len(WORKLOADS)]
            try:
                prediction = client.predict(workload, seed=i)
            except Exception as exc:
                print(f"predict #{i} ({workload}) failed: {exc!r}")
                continue
            assert prediction["workload"] == workload
            answered += 1
    finally:
        client.close()
    availability = answered / CHAOS_PREDICTS
    print(f"chaos storm: {answered}/{CHAOS_PREDICTS} answered "
          f"(availability {availability:.3f})")
    if availability < CHAOS_AVAILABILITY_FLOOR:
        raise RuntimeError(
            f"availability {availability:.3f} below the "
            f"{CHAOS_AVAILABILITY_FLOOR} floor under chaos"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the server under test")
    parser.add_argument("--chaos", default="",
                        help="chaos spec to arm in the server under test "
                             "(preset, severity=S, or knob=value list); "
                             "switches the smoke to the resilient client "
                             "and gates availability >= 0.95")
    args = parser.parse_args(argv)
    if args.chaos and args.workers <= 1:
        parser.error("--chaos requires --workers > 1 (pool-mode only)")

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    cmd = [sys.executable, "-m", "repro", "serve", "--no-cache",
           "--workers", str(args.workers)]
    if args.chaos:
        # A short hang timeout so the watchdog recovers injected hangs
        # well inside the smoke budget.
        cmd += ["--chaos", args.chaos, "--hang-timeout-s", "0.5"]
    proc = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.match(r"serving on (\S+):(\d+)", line)
        if not match:
            raise RuntimeError(f"unexpected first line: {line!r}")
        host, port = match.group(1), int(match.group(2))
        print(f"server up at {host}:{port} (workers={args.workers}"
              + (f", chaos={args.chaos}" if args.chaos else "") + ")")

        if args.chaos:
            drive_chaos(host, port)
        else:
            drive_healthy(host, port)

        proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + TIMEOUT_S
        while proc.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        output = proc.stdout.read()
        if proc.returncode != 0:
            raise RuntimeError(
                f"server exited {proc.returncode}; output: {output!r}"
            )
        settle = re.search(r"stopped admitted=(\d+) settled=(\d+)", output)
        if not settle:
            raise RuntimeError(f"no graceful-stop marker in: {output!r}")
        admitted, settled = int(settle.group(1)), int(settle.group(2))
        if admitted != settled:
            raise RuntimeError(
                f"drain leaked requests: admitted={admitted} "
                f"settled={settled}; output: {output!r}"
            )
        print(f"graceful shutdown ok (admitted={admitted} settled={settled})")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
