"""CI smoke test: boot ``python -m repro serve``, round-trip, drain.

Launches the real CLI entry point as a subprocess (ephemeral port),
parses the ``serving on host:port`` line, performs a ``ping`` and a
handful of ``predict`` round-trips through
:class:`repro.serve.ServeClient`, then sends SIGINT and requires a
graceful, zero-exit shutdown whose settlement line balances
(``admitted == settled`` — no admitted request may leak through a
drain).  ``--workers N`` runs the same smoke against the sharded
worker pool; CI exercises both the in-process and ``--workers 2``
shapes.

    PYTHONPATH=src python scripts/serve_smoke.py [--workers N]
"""

import argparse
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TIMEOUT_S = 60.0

WORKLOADS = ("EP", "CG", "IS", "BT")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the server under test")
    args = parser.parse_args(argv)

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--no-cache",
         "--workers", str(args.workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.match(r"serving on (\S+):(\d+)", line)
        if not match:
            raise RuntimeError(f"unexpected first line: {line!r}")
        host, port = match.group(1), int(match.group(2))
        print(f"server up at {host}:{port} (workers={args.workers})")

        from repro.serve import ServeClient

        with ServeClient(host, port, timeout_s=TIMEOUT_S) as client:
            assert client.ping() is True
            for workload in WORKLOADS:
                prediction = client.predict(workload)
                assert prediction["workload"] == workload
                assert prediction["recommended_level"] in (
                    prediction["high_level"], prediction["low_level"]
                )
            print(f"predict {WORKLOADS[-1]} -> "
                  f"SMT{prediction['recommended_level']} "
                  f"(SMTsm {prediction['smtsm']:.5f})")

        proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + TIMEOUT_S
        while proc.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        output = proc.stdout.read()
        if proc.returncode != 0:
            raise RuntimeError(
                f"server exited {proc.returncode}; output: {output!r}"
            )
        settle = re.search(r"stopped admitted=(\d+) settled=(\d+)", output)
        if not settle:
            raise RuntimeError(f"no graceful-stop marker in: {output!r}")
        admitted, settled = int(settle.group(1)), int(settle.group(2))
        if admitted != settled:
            raise RuntimeError(
                f"drain leaked requests: admitted={admitted} "
                f"settled={settled}; output: {output!r}"
            )
        print(f"graceful shutdown ok (admitted={admitted} settled={settled})")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
