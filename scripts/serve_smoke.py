"""CI smoke test: boot ``python -m repro serve``, round-trip, drain.

Launches the real CLI entry point as a subprocess (ephemeral port),
parses the ``serving on host:port`` line, performs one ``ping`` and one
``predict`` through :class:`repro.serve.ServeClient`, then sends
SIGINT and requires a graceful, zero-exit shutdown.

    PYTHONPATH=src python scripts/serve_smoke.py
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
TIMEOUT_S = 60.0


def main():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env["PYTHONUNBUFFERED"] = "1"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--no-cache"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.match(r"serving on (\S+):(\d+)", line)
        if not match:
            raise RuntimeError(f"unexpected first line: {line!r}")
        host, port = match.group(1), int(match.group(2))
        print(f"server up at {host}:{port}")

        from repro.serve import ServeClient

        with ServeClient(host, port, timeout_s=TIMEOUT_S) as client:
            assert client.ping() is True
            prediction = client.predict("EP")
            assert prediction["workload"] == "EP"
            assert prediction["recommended_level"] in (
                prediction["high_level"], prediction["low_level"]
            )
            print(f"predict EP -> SMT{prediction['recommended_level']} "
                  f"(SMTsm {prediction['smtsm']:.5f})")

        proc.send_signal(signal.SIGINT)
        deadline = time.monotonic() + TIMEOUT_S
        while proc.poll() is None and time.monotonic() < deadline:
            time.sleep(0.05)
        output = proc.stdout.read()
        if proc.returncode != 0:
            raise RuntimeError(
                f"server exited {proc.returncode}; output: {output!r}"
            )
        if "stopped" not in output:
            raise RuntimeError(f"no graceful-stop marker in: {output!r}")
        print("graceful shutdown ok")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
