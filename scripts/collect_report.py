"""Aggregate all rendered experiment outputs into one REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only`` (which writes the
individual ``results/*.txt`` files).

    python scripts/collect_report.py [output.md]
"""

import sys
from pathlib import Path

SECTIONS = (
    ("Paper figures and tables", (
        "table1_catalog", "fig01_motivation", "fig02_naive_metrics",
        "fig06_smt4v1_at4", "fig07_instruction_mix", "fig08_smt4v2_at4",
        "fig09_smt2v1_at2", "fig10_nehalem", "fig11_at_smt1_p7",
        "fig12_at_smt1_nehalem", "fig13_two_chip_41", "fig14_two_chip_42",
        "fig15_two_chip_21", "fig16_gini", "fig17_ppi",
    )),
    ("Applications of the metric", (
        "online_optimizer", "batch_scheduler", "offline_vs_online",
        "threshold_transfer", "scaling_cores",
    )),
    ("Ablations and extensions", (
        "ablation_factors", "ablation_perf_overhead", "ablation_engines",
        "ablation_threshold_methods", "ablation_priorities",
        "ablation_fetch_policy", "coschedule_symbiosis",
        "related_mathis_power5", "armsmt_transfer", "hetero_biglittle",
    )),
)


def main(out_path: str = "REPORT.md") -> int:
    results = Path(__file__).resolve().parent.parent / "results"
    if not results.is_dir():
        print("results/ missing — run: pytest benchmarks/ --benchmark-only",
              file=sys.stderr)
        return 1
    lines = ["# Experiment report", "",
             "Generated from `results/*.txt` by `scripts/collect_report.py`.",
             ""]
    missing = []
    for title, names in SECTIONS:
        lines.append(f"## {title}")
        lines.append("")
        for name in names:
            path = results / f"{name}.txt"
            if not path.exists():
                missing.append(name)
                continue
            lines.append(f"### {name}")
            lines.append("")
            lines.append("```")
            lines.append(path.read_text().rstrip())
            lines.append("```")
            lines.append("")
    if missing:
        lines.append(f"_Missing results: {', '.join(missing)}_")
    Path(out_path).write_text("\n".join(lines) + "\n")
    print(f"wrote {out_path} ({len(lines)} lines)"
          + (f"; missing: {missing}" if missing else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1] if len(sys.argv) > 1 else "REPORT.md"))
