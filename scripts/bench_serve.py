"""Benchmark the prediction service: batched vs unbatched serving.

Boots the server in-process twice — once with micro-batching enabled
(``max_batch=32``, a few ms of linger) and once effectively disabled
(``max_batch=1``, zero linger) — and drives each with the same closed
loop of concurrent clients issuing ``predict`` requests.  Every request
carries a distinct seed and the server session runs with the run cache
off, so each request costs a real simulation: the measured difference
is purely the coalescing win (one columnar ``ScenarioTable`` solve per
batch instead of one per request).  A third batched phase runs the
session in surrogate mode (``session={"surrogate": True}``), where the
calibrated fast path answers in-bound rows without the full solver.

Telemetry (``repro.obs``) is read in-process after each phase so the
achieved mean batch size is *measured*, not assumed.

A second sweep measures the sharded worker tier (``--workers``,
default ``1,2,4``): mixed-key traffic — four distinct (arch, n_chips)
systems, so distinct batch keys route to distinct worker processes —
driven through the same closed loop at each pool size.  The recorded
``worker_scaling`` block carries the req/s curve, the measured mean
batch size at every width (coalescing must survive sharding), and the
host's usable core count: worker processes buy throughput only up to
the physical cores available, so the >= 2.5x at 4 workers acceptance
gate is enforced only where >= 4 cores exist and the curve is recorded
annotated (not failed) on smaller hosts — see docs/scaling.md.

Writes ``BENCH_serve.json`` at the repo root::

    PYTHONPATH=src python scripts/bench_serve.py [--requests N]

The headline number — batched vs unbatched requests/s at 16 concurrent
clients — is expected to be >= 2x (the acceptance bar for the serving
layer; the script exits 1 below it).
"""

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

from repro.obs import configure
from repro.serve import BackgroundServer, ServeClient, ServeConfig

#: Skewed toward sync-heavy workloads (spin/lock fixed points): their
#: solver iterations are exactly the work the batched engine vectorizes,
#: and they are the workloads an SMT-selection service exists for.
WORKLOADS = ("SSCA2", "Fluidanimate", "SPECjbb_contention", "Dedup",
             "Streamcluster", "Daytrader", "EP", "CG")

#: A fixed threshold skips the per-session catalog fit, which would
#: otherwise dominate the first batch and pollute the timing.
SESSION = {"seed": 11, "use_cache": False, "threshold": 0.064}

#: Distinct batch keys for the worker sweep: each (arch, n_chips) pair
#: is its own coalescing group and routes to its own worker, so a pool
#: of up to four workers can be fully busy at once.
MIXED_SYSTEMS = (("p7", 1), ("p7", 2), ("nehalem", 1), ("nehalem", 2))


def usable_cores():
    """Cores this process may actually run on (cgroup/affinity aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def drive(host, port, n_clients, requests_per_client, mixed_keys=False):
    """Closed-loop load: each client fires its requests back to back.

    ``mixed_keys`` spreads the clients over :data:`MIXED_SYSTEMS` so the
    traffic carries four distinct batch keys instead of one.
    """
    barrier = threading.Barrier(n_clients + 1)
    errors = []

    def worker(client_index):
        try:
            with ServeClient(host, port, timeout_s=120.0) as client:
                if mixed_keys:
                    arch, n_chips = MIXED_SYSTEMS[
                        client_index % len(MIXED_SYSTEMS)]
                else:
                    arch, n_chips = "p7", None
                barrier.wait(timeout=30)
                for i in range(requests_per_client):
                    workload = WORKLOADS[(client_index + i) % len(WORKLOADS)]
                    # Distinct seeds keep every request a real solve:
                    # no run-cache or hot-key-cache hit can answer it.
                    seed = 1000 * client_index + i
                    client.predict(workload, arch=arch, n_chips=n_chips,
                                   seed=seed)
        except Exception as exc:  # pragma: no cover - reported below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(c,))
               for c in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise RuntimeError(f"{len(errors)} client(s) failed: {errors[0]}")
    total = n_clients * requests_per_client
    return total, elapsed


def run_phase(config, n_clients, requests_per_client, mixed_keys=False):
    tracer = configure(enabled=True)
    tracer.reset()
    with BackgroundServer(config) as bg:
        total, elapsed = drive(bg.host, bg.port, n_clients,
                               requests_per_client, mixed_keys=mixed_keys)
    counters = tracer.counters()
    configure(enabled=False)
    tracer.reset()
    batches = counters.get("serve.batches", 0)
    batched_requests = counters.get("serve.batched_requests", 0)
    phase = {
        "clients": n_clients,
        "requests": total,
        "seconds": elapsed,
        "requests_per_s": total / elapsed,
        "batches": int(batches),
        "mean_batch_size": batched_requests / batches if batches else 0.0,
    }
    if config.workers > 1:
        phase["workers"] = config.workers
        phase["worker_batches"] = {
            name.split("serve.worker.", 1)[1].split(".", 1)[0]: int(value)
            for name, value in sorted(counters.items())
            if name.startswith("serve.worker.w") and name.endswith(".batches")
        }
        phase["shed"] = int(counters.get("serve.worker.shed", 0))
        phase["spills"] = int(counters.get("serve.worker.spills", 0))
    return phase


def batched_config():
    return ServeConfig(max_batch=32, max_linger_ms=4.0, session=SESSION)


def surrogate_config():
    return ServeConfig(max_batch=32, max_linger_ms=4.0,
                       session={**SESSION, "surrogate": True})


def unbatched_config():
    return ServeConfig(max_batch=1, max_linger_ms=0.0, session=SESSION)


def pool_config(workers):
    return ServeConfig(max_batch=32, max_linger_ms=4.0, workers=workers,
                       session=SESSION)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=8,
                        help="requests per client per phase")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated pool widths for the worker "
                             "sweep (empty string skips it)")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_serve.json)")
    args = parser.parse_args(argv)

    # Fit/load the surrogate models before any timed phase: calibration
    # is an offline step and must not be billed to the first batch.
    from repro.experiments.systems import p7_system
    from repro.sim.surrogate import get_surrogate

    system = p7_system()
    get_surrogate(system.arch, system.n_chips)

    phases = {}
    for label, config, clients in (
        ("single_client_batched", batched_config(), 1),
        ("batched_16_clients", batched_config(), 16),
        ("surrogate_16_clients", surrogate_config(), 16),
        ("unbatched_16_clients", unbatched_config(), 16),
    ):
        phases[label] = run_phase(config, clients, args.requests)
        p = phases[label]
        print(f"{label:24s} {p['requests']:4d} requests in "
              f"{p['seconds']:6.2f}s = {p['requests_per_s']:7.1f} req/s "
              f"(mean batch size {p['mean_batch_size']:.1f})")

    speedup = (phases["batched_16_clients"]["requests_per_s"]
               / phases["unbatched_16_clients"]["requests_per_s"])
    print(f"batched vs unbatched @16 clients: {speedup:.2f}x")
    surrogate_gain = (phases["surrogate_16_clients"]["requests_per_s"]
                      / phases["batched_16_clients"]["requests_per_s"])
    print(f"surrogate vs batched  @16 clients: {surrogate_gain:.2f}x")

    # -- worker-scaling sweep (mixed-key traffic) ----------------------
    cores = usable_cores()
    widths = [int(w) for w in args.workers.split(",") if w.strip()]
    worker_scaling = None
    scaling_failed = False
    if widths:
        worker_phases = {}
        for width in widths:
            label = f"workers_{width}"
            worker_phases[label] = run_phase(
                pool_config(width), 16, args.requests, mixed_keys=True)
            p = worker_phases[label]
            print(f"{label:24s} {p['requests']:4d} requests in "
                  f"{p['seconds']:6.2f}s = {p['requests_per_s']:7.1f} req/s "
                  f"(mean batch size {p['mean_batch_size']:.1f})")
        base = worker_phases.get("workers_1") or worker_phases[
            f"workers_{min(widths)}"]
        top_width = max(widths)
        top = worker_phases[f"workers_{top_width}"]
        scaling = top["requests_per_s"] / base["requests_per_s"]
        cores_limited = cores < top_width
        print(f"workers {top_width} vs 1 (mixed keys): {scaling:.2f}x "
              f"on {cores} usable core(s)")
        worker_scaling = {
            "cpu_cores": cores,
            "phases": worker_phases,
            "speedup_workers_max_vs_1": scaling,
            "top_width": top_width,
            "cores_limited": cores_limited,
        }
        if cores_limited:
            # Worker processes buy throughput only up to the physical
            # cores available (docs/scaling.md): on a smaller host the
            # curve is recorded honestly and annotated, not failed.
            worker_scaling["note"] = (
                f"host exposes {cores} usable core(s); the >= 2.5x at "
                f"{top_width} workers gate needs >= {top_width} cores "
                "and was not enforced"
            )
            print(f"NOTE: {worker_scaling['note']}")
        elif top_width >= 4 and scaling < 2.5:
            scaling_failed = True

    payload = {
        "workloads": list(WORKLOADS),
        "requests_per_client": args.requests,
        "phases": phases,
        "speedup_batched_vs_unbatched_16_clients": speedup,
        "speedup_surrogate_vs_batched_16_clients": surrogate_gain,
    }
    if worker_scaling is not None:
        payload["worker_scaling"] = worker_scaling
    out = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_serve.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if speedup < 2.0:
        print(f"FAIL: batched serving is only {speedup:.2f}x unbatched "
              f"(acceptance bar: 2x)", file=sys.stderr)
        return 1
    if scaling_failed:
        print(f"FAIL: {top_width} workers scale only "
              f"{worker_scaling['speedup_workers_max_vs_1']:.2f}x over 1 "
              f"on {cores} cores (acceptance bar: 2.5x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
