"""CI perf smoke: the columnar engine must keep beating the scalar one.

A deliberately small cold sweep (a catalog subset at every POWER7 SMT
level) timed through the scalar reference and the columnar strategy.
The full benchmark (``scripts/bench_sweep.py``) measures ~20x on the
128-run sweep; this gate only defends against catastrophic regressions
— losing the whole-table vectorization, an accidental per-row Python
loop — so the bar is deliberately low and CI-noise-proof: the cold
columnar sweep must stay at least ``MIN_SPEEDUP``x the scalar engine.

    PYTHONPATH=src python scripts/perf_smoke.py
"""

import sys
import time

from repro.experiments.runner import run_catalog
from repro.experiments.systems import p7_system
from repro.sim import engine
from repro.workloads.catalog import all_workloads

MIN_SPEEDUP = 4.0
SEED = 11
LEVELS = (1, 2, 4)
#: Sync-free, bandwidth-bound and lock-contended — all solver regimes.
NAMES = ("EP", "IS", "SSCA2", "Equake", "Fluidanimate",
         "SPECjbb_contention", "Daytrader", "Streamcluster")


def timed(strategy, repeats=3):
    specs = all_workloads()
    catalog = {n: specs[n] for n in NAMES}
    times = []
    for _ in range(repeats):
        engine._SERIAL_RATE_CACHE.clear()
        start = time.perf_counter()
        run_catalog(p7_system(), catalog, LEVELS, strategy=strategy,
                    seed=SEED, use_cache=False)
        times.append(time.perf_counter() - start)
    return min(times)


def main():
    n_runs = len(NAMES) * len(LEVELS)
    scalar_s = timed("serial")
    columnar_s = timed("columnar")
    speedup = scalar_s / columnar_s
    print(f"{n_runs} cold runs: scalar {scalar_s * 1e3:.1f} ms, "
          f"columnar {columnar_s * 1e3:.1f} ms -> {speedup:.2f}x")
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: cold columnar sweep is only {speedup:.2f}x the "
              f"scalar engine (perf-smoke bar: {MIN_SPEEDUP}x)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
