"""Benchmark the fleet simulator: placement policies under fault load.

Runs every built-in placement policy (``smtsm``, ``least_loaded``,
``round_robin``, ``random``) over the same reference fleet — 24 mixed
POWER7/Nehalem chips, 4000 jobs, identical seeded arrival trace — at
fault severities 0.0, 0.2 and 0.4, and records throughput, latency
percentiles and SMT-switch counts per cell.  Because the trace and the
per-node fault streams are derived from the config seed only, every
policy at a given severity sees byte-identical offered load: measured
differences are pure policy effect.

A final scale phase runs the 1000-chip x 100k-job configuration with
the ``smtsm`` policy to demonstrate that the mega-batched columnar
lowering keeps fleet-scale simulation tractable (wall-clock seconds,
not hours), and records its wall time and settlement.

Writes ``BENCH_fleet.json`` at the repo root::

    PYTHONPATH=src python scripts/bench_fleet.py [--jobs N] [--chips N]

Acceptance bars (script exits 1 below them):

- ``smtsm`` beats ``random`` AND ``least_loaded`` on throughput at
  severity 0.0;
- ``smtsm`` stays ahead of ``random`` at severity 0.4;
- the scale run settles (submitted == completed + rejected).
"""

import argparse
import json
import sys
import time
from pathlib import Path

from repro.fleet import FleetConfig, list_policies, simulate_fleet

SEVERITIES = (0.0, 0.2, 0.4)

#: 3:1 POWER7:Nehalem — a mixed fleet exercises the per-arch predictor
#: plumbing (SMT-4 vs SMT-2 ceilings) rather than a single-arch shortcut.
ARCH_MIX = "power7:3,nehalem:1"


def run_cell(policy: str, severity: float, args) -> dict:
    config = FleetConfig(
        chips=args.chips,
        jobs=args.jobs,
        arch_mix=ARCH_MIX,
        policy=policy,
        severity=severity,
        seed=args.seed,
    )
    t0 = time.perf_counter()
    result = simulate_fleet(config)
    wall = time.perf_counter() - t0
    cell = {
        "policy": policy,
        "severity": severity,
        "wall_s": wall,
        "jobs_submitted": result.jobs_submitted,
        "jobs_completed": result.jobs_completed,
        "rejected_admission": result.rejected_admission,
        "rejected_crashed": result.rejected_crashed,
        "throughput_jobs_s": result.throughput_jobs_s,
        "work_throughput": result.work_throughput,
        "latency_p50_s": result.latency_p50_s,
        "latency_p95_s": result.latency_p95_s,
        "latency_p99_s": result.latency_p99_s,
        "smt_switches": result.smt_switches,
        "node_crashes": result.node_crashes,
        "node_hangs": result.node_hangs,
        "settled": result.settled,
    }
    return cell


def run_scale(args) -> dict:
    config = FleetConfig(
        chips=args.scale_chips,
        jobs=args.scale_jobs,
        arch_mix=ARCH_MIX,
        policy="smtsm",
        severity=0.2,
        seed=args.seed,
    )
    t0 = time.perf_counter()
    result = simulate_fleet(config)
    wall = time.perf_counter() - t0
    return {
        "chips": config.chips,
        "jobs": config.jobs,
        "policy": config.policy,
        "severity": config.severity,
        "wall_s": wall,
        "jobs_completed": result.jobs_completed,
        "throughput_jobs_s": result.throughput_jobs_s,
        "smt_switches": result.smt_switches,
        "node_crashes": result.node_crashes,
        "settled": result.settled,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chips", type=int, default=24)
    parser.add_argument("--jobs", type=int, default=4000)
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--scale-chips", type=int, default=1000)
    parser.add_argument("--scale-jobs", type=int, default=100_000)
    parser.add_argument("--skip-scale", action="store_true")
    parser.add_argument("--output", default=None)
    args = parser.parse_args()

    policies = list_policies()
    cells = []
    by_key = {}
    for severity in SEVERITIES:
        for policy in policies:
            cell = run_cell(policy, severity, args)
            cells.append(cell)
            by_key[(policy, severity)] = cell
            print(f"sev {severity:.1f} {policy:12s} "
                  f"{cell['throughput_jobs_s']:6.2f} jobs/s  "
                  f"p95 {cell['latency_p95_s']:6.2f}s  "
                  f"switches {cell['smt_switches']:5d}  "
                  f"({cell['wall_s']:.2f}s wall)")

    scale = None
    if not args.skip_scale:
        scale = run_scale(args)
        print(f"scale {scale['chips']} chips x {scale['jobs']} jobs: "
              f"{scale['wall_s']:.1f}s wall, "
              f"{scale['jobs_completed']} completed, "
              f"settled={scale['settled']}")

    def tput(policy, severity):
        return by_key[(policy, severity)]["throughput_jobs_s"]

    gates = {
        "smtsm_beats_random_sev00":
            tput("smtsm", 0.0) > tput("random", 0.0),
        "smtsm_beats_least_loaded_sev00":
            tput("smtsm", 0.0) > tput("least_loaded", 0.0),
        "smtsm_beats_random_sev04":
            tput("smtsm", 0.4) > tput("random", 0.4),
        "all_cells_settled": all(c["settled"] for c in cells),
    }
    if scale is not None:
        gates["scale_run_settled"] = scale["settled"]

    payload = {
        "fleet": {"chips": args.chips, "jobs": args.jobs,
                  "arch_mix": ARCH_MIX, "seed": args.seed},
        "policies": policies,
        "severities": list(SEVERITIES),
        "cells": cells,
        "gates": gates,
    }
    if scale is not None:
        payload["scale"] = scale

    out = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_fleet.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    failed = [name for name, ok in gates.items() if not ok]
    if failed:
        print(f"FAIL: gates not met: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
