"""Benchmark the full catalog sweep across every execution strategy.

Times the complete POWER7 (28 workloads x SMT1/2/4) plus Nehalem
(22 workloads x SMT1/2) sweeps through five paths:

* ``scalar``    — the reference engine, one ``simulate_run`` per spec;
* ``batched``   — ``run_catalog(strategy="batched")``, the legacy
  vectorized engine, cache disabled (cold);
* ``columnar``  — ``run_catalog(strategy="columnar")``: the whole sweep
  lowered into one ``ScenarioTable`` per architecture, cache disabled;
* ``surrogate`` — ``run_catalog(strategy="surrogate")``: the calibrated
  fast path answers in-bound scenarios directly, the rest fall back to
  the table solver (models are fit/loaded untimed first — calibration
  is an offline step);
* ``cached``    — the columnar strategy against a freshly populated
  run cache (warm rerun; no simulation at all).

The warm phase is then re-run once with in-process telemetry enabled
(``repro.obs``) so the cache hit/miss counts are *measured*, not
inferred from timing: every run must be a ``runcache.hits`` increment
and none a miss, or the warm speedup is mislabelled.

Writes ``BENCH_sweep.json`` at the repo root with per-phase wall times,
per-scenario latencies (seconds / n_runs), the headline speedups
(each strategy vs scalar), and the telemetry-verified warm-cache hit
and surrogate hit counts.

    PYTHONPATH=src python scripts/bench_sweep.py [--repeats N]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import run_catalog
from repro.experiments.systems import nehalem_system, p7_system
from repro.obs import configure
from repro.sim import engine
from repro.sim.runcache import RunCache
from repro.workloads.catalog import (
    NEHALEM_SET,
    NEHALEM_SMT1_SET,
    all_workloads,
    power7_catalog,
)

SEED = 11


def sweeps():
    specs = all_workloads()
    nehalem_names = sorted(set(NEHALEM_SET) | set(NEHALEM_SMT1_SET))
    return (
        ("p7", p7_system(), power7_catalog(), (1, 2, 4)),
        ("nehalem", nehalem_system(),
         {n: specs[n] for n in nehalem_names}, (1, 2)),
    )


def reset_memo_state():
    # The serial-rate memo survives across calls; clear it so every
    # timed phase starts from the same cold state.  Surrogate models
    # are deliberately NOT cleared: calibration is an offline step.
    engine._SERIAL_RATE_CACHE.clear()


def timed(fn, repeats):
    times = []
    for _ in range(repeats):
        reset_memo_state()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def run_strategy(strategy):
    for _, system, catalog, levels in sweeps():
        run_catalog(system, catalog, levels, strategy=strategy, seed=SEED,
                    use_cache=False)


def run_with_cache(cache):
    for _, system, catalog, levels in sweeps():
        run_catalog(system, catalog, levels, seed=SEED, cache=cache)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per phase (min is reported)")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_sweep.json)")
    args = parser.parse_args(argv)

    parts = [(name, len(catalog) * len(levels))
             for name, _, catalog, levels in sweeps()]
    n_runs = sum(count for _, count in parts)
    detail = " + ".join(f"{name} {count}" for name, count in parts)
    print(f"sweep size: {n_runs} runs ({detail}), repeats={args.repeats}")

    def report(label, seconds, baseline=None):
        rel = "" if baseline is None else f" ({baseline / seconds:.2f}x vs scalar)"
        print(f"{label:22}{seconds * 1e3:9.1f} ms "
              f"({seconds / n_runs * 1e6:7.1f} us/run){rel}")

    scalar_s = timed(lambda: run_strategy("serial"), args.repeats)
    report("scalar engine:", scalar_s)

    batched_s = timed(lambda: run_strategy("batched"), args.repeats)
    report("batched engine (cold):", batched_s, scalar_s)

    columnar_s = timed(lambda: run_strategy("columnar"), args.repeats)
    report("columnar table (cold):", columnar_s, scalar_s)

    # Fit/load the surrogate models untimed, then time steady-state use.
    run_strategy("surrogate")
    tracer = configure(enabled=True)
    tracer.reset()
    reset_memo_state()
    run_strategy("surrogate")
    surrogate_counters = tracer.counters()
    configure(enabled=False)
    tracer.reset()
    surrogate_s = timed(lambda: run_strategy("surrogate"), args.repeats)
    sur_hits = int(surrogate_counters.get("surrogate.hits", 0))
    sur_falls = int(surrogate_counters.get("surrogate.fallbacks", 0))
    report("surrogate (steady):", surrogate_s, scalar_s)
    print(f"{'':22}surrogate answered {sur_hits}/{sur_hits + sur_falls} "
          f"runs directly")

    with tempfile.TemporaryDirectory() as tmp:
        cache = RunCache(Path(tmp))
        reset_memo_state()
        start = time.perf_counter()
        run_with_cache(cache)
        populate_s = time.perf_counter() - start
        print(f"{'columnar + cache fill:':22}{populate_s * 1e3:9.1f} ms "
              f"({len(cache)} entries)")
        warm_s = timed(lambda: run_with_cache(cache), args.repeats)

        # Counted (untimed) warm pass: telemetry reports what the cache
        # actually did, instead of inferring it from the speedup.
        tracer = configure(enabled=True)
        tracer.reset()
        reset_memo_state()
        run_with_cache(cache)
        warm_counters = tracer.counters()
        configure(enabled=False)
        tracer.reset()

    hits = int(warm_counters.get("runcache.hits", 0))
    misses = int(warm_counters.get("runcache.misses", 0))
    report("warm cache rerun:", warm_s, scalar_s)
    print(f"{'':22}{hits}/{hits + misses} cache hits")
    if hits != n_runs or misses != 0:
        print(f"WARNING: warm pass expected {n_runs} hits / 0 misses, "
              f"telemetry saw {hits} hits / {misses} misses")

    seconds = {
        "scalar": scalar_s,
        "batched_cold": batched_s,
        "columnar_cold": columnar_s,
        "surrogate": surrogate_s,
        "batched_cache_fill": populate_s,
        "warm_cache": warm_s,
    }
    payload = {
        "n_runs": n_runs,
        "repeats": args.repeats,
        "seconds": seconds,
        "per_run_seconds": {k: v / n_runs for k, v in seconds.items()},
        "speedup": {
            "batched_vs_scalar": scalar_s / batched_s,
            "columnar_vs_scalar": scalar_s / columnar_s,
            "surrogate_vs_scalar": scalar_s / surrogate_s,
            "warm_cache_vs_scalar": scalar_s / warm_s,
        },
        "surrogate_telemetry": {
            "hits": sur_hits,
            "fallbacks": sur_falls,
            "hit_rate": sur_hits / max(sur_hits + sur_falls, 1),
        },
        "warm_cache_telemetry": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / max(hits + misses, 1),
        },
    }
    out = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_sweep.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
