"""Benchmark the full catalog sweep: scalar vs batched vs warm cache.

Times the complete POWER7 (28 workloads x SMT1/2/4) plus Nehalem
(22 workloads x SMT1/2) sweeps through three paths:

* ``scalar``  — the reference engine, one ``simulate_run`` per spec;
* ``batched`` — ``run_catalog(strategy="batched")`` with the cache disabled (cold);
* ``cached``  — the batched strategy against a freshly populated
  run cache (warm rerun; no simulation at all).

The warm phase is then re-run once with in-process telemetry enabled
(``repro.obs``) so the cache hit/miss counts are *measured*, not
inferred from timing: every run must be a ``runcache.hits`` increment
and none a miss, or the warm speedup is mislabelled.

Writes ``BENCH_sweep.json`` at the repo root with per-phase wall times,
the two headline speedups (batched-vs-scalar, warm-vs-scalar), and the
telemetry-verified warm-cache hit counts.

    PYTHONPATH=src python scripts/bench_sweep.py [--repeats N]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.runner import run_catalog
from repro.experiments.systems import nehalem_system, p7_system
from repro.obs import configure
from repro.sim import engine
from repro.sim.runcache import RunCache
from repro.workloads.catalog import (
    NEHALEM_SET,
    NEHALEM_SMT1_SET,
    all_workloads,
    power7_catalog,
)

SEED = 11


def sweeps():
    specs = all_workloads()
    nehalem_names = sorted(set(NEHALEM_SET) | set(NEHALEM_SMT1_SET))
    return (
        ("p7", p7_system(), power7_catalog(), (1, 2, 4)),
        ("nehalem", nehalem_system(),
         {n: specs[n] for n in nehalem_names}, (1, 2)),
    )


def reset_memo_state():
    # The serial-rate memo survives across calls; clear it so every
    # timed phase starts from the same cold state.
    engine._SERIAL_RATE_CACHE.clear()


def timed(fn, repeats):
    times = []
    for _ in range(repeats):
        reset_memo_state()
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return min(times)


def run_scalar():
    for _, system, catalog, levels in sweeps():
        run_catalog(system, catalog, levels, strategy="serial", seed=SEED)


def run_batched():
    for _, system, catalog, levels in sweeps():
        run_catalog(system, catalog, levels, seed=SEED,
                    use_cache=False)


def run_with_cache(cache):
    for _, system, catalog, levels in sweeps():
        run_catalog(system, catalog, levels, seed=SEED, cache=cache)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per phase (min is reported)")
    parser.add_argument("--output", default=None,
                        help="output path (default: <repo>/BENCH_sweep.json)")
    args = parser.parse_args(argv)

    parts = [(name, len(catalog) * len(levels))
             for name, _, catalog, levels in sweeps()]
    n_runs = sum(count for _, count in parts)
    detail = " + ".join(f"{name} {count}" for name, count in parts)
    print(f"sweep size: {n_runs} runs ({detail}), repeats={args.repeats}")

    scalar_s = timed(run_scalar, args.repeats)
    print(f"scalar engine:        {scalar_s * 1e3:9.1f} ms")

    batched_s = timed(run_batched, args.repeats)
    print(f"batched engine (cold):{batched_s * 1e3:9.1f} ms "
          f"({scalar_s / batched_s:.2f}x vs scalar)")

    with tempfile.TemporaryDirectory() as tmp:
        cache = RunCache(Path(tmp))
        reset_memo_state()
        start = time.perf_counter()
        run_with_cache(cache)
        populate_s = time.perf_counter() - start
        print(f"batched + cache fill: {populate_s * 1e3:9.1f} ms "
              f"({len(cache)} entries)")
        warm_s = timed(lambda: run_with_cache(cache), args.repeats)

        # Counted (untimed) warm pass: telemetry reports what the cache
        # actually did, instead of inferring it from the speedup.
        tracer = configure(enabled=True)
        tracer.reset()
        reset_memo_state()
        run_with_cache(cache)
        warm_counters = tracer.counters()
        configure(enabled=False)
        tracer.reset()

    hits = int(warm_counters.get("runcache.hits", 0))
    misses = int(warm_counters.get("runcache.misses", 0))
    print(f"warm cache rerun:     {warm_s * 1e3:9.1f} ms "
          f"({scalar_s / warm_s:.2f}x vs scalar, "
          f"{hits}/{hits + misses} cache hits)")
    if hits != n_runs or misses != 0:
        print(f"WARNING: warm pass expected {n_runs} hits / 0 misses, "
              f"telemetry saw {hits} hits / {misses} misses")

    payload = {
        "n_runs": n_runs,
        "repeats": args.repeats,
        "seconds": {
            "scalar": scalar_s,
            "batched_cold": batched_s,
            "batched_cache_fill": populate_s,
            "warm_cache": warm_s,
        },
        "speedup": {
            "batched_vs_scalar": scalar_s / batched_s,
            "warm_cache_vs_scalar": scalar_s / warm_s,
        },
        "warm_cache_telemetry": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / max(hits + misses, 1),
        },
    }
    out = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_sweep.json")
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
