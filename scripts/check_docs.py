"""Docs-consistency check: the API page must cover the public surface.

Every public symbol re-exported in ``repro/__init__.py`` (and, since
the observability and robustness PRs, in ``repro/obs/__init__.py`` and
``repro/faults/__init__.py``) must be mentioned in ``docs/api.md`` — otherwise the API page silently drifts from the
code, which is exactly how the batched-engine symbols went
undocumented for a whole PR.

Run standalone (exit code 1 lists the missing symbols)::

    PYTHONPATH=src python scripts/check_docs.py

or via the test suite (``tests/test_docs_consistency.py`` imports this
module and asserts the same thing).
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path
from typing import Dict, List

REPO_ROOT = Path(__file__).resolve().parent.parent
API_DOC = REPO_ROOT / "docs" / "api.md"

#: Modules whose ``__all__`` constitutes the documented public surface.
PUBLIC_MODULES = (
    "repro",
    "repro.api",
    "repro.arch",
    "repro.serve",
    "repro.serve.workers",
    "repro.obs",
    "repro.faults",
    "repro.check",
    "repro.sim.table",
    "repro.sim.surrogate",
    "repro.fleet",
)

#: Doc pages that must exist (a rename or deletion fails loudly here
#: before a dangling cross-reference ships).
REQUIRED_DOCS = (
    "api.md",
    "architecture.md",
    "architectures.md",
    "observability.md",
    "performance.md",
    "robustness.md",
    "scaling.md",
    "fleet.md",
    "serving.md",
    "simulator.md",
    "testing.md",
)


def public_symbols(module_name: str) -> List[str]:
    module = importlib.import_module(module_name)
    return [name for name in module.__all__ if not name.startswith("_")]


def missing_docs() -> List[str]:
    """Required doc pages absent from docs/ (empty = ok)."""
    docs_dir = REPO_ROOT / "docs"
    return [name for name in REQUIRED_DOCS if not (docs_dir / name).is_file()]


def missing_scaling_knobs(doc_text: str = None) -> List[str]:
    """ServeConfig fields absent from docs/scaling.md's knob reference.

    docs/scaling.md promises a complete tuning-knob table; checking it
    against the dataclass fields keeps a new serving knob from shipping
    undocumented.
    """
    import dataclasses

    from repro.serve import ServeConfig

    if doc_text is None:
        doc_text = (REPO_ROOT / "docs" / "scaling.md").read_text()
    return [
        field.name for field in dataclasses.fields(ServeConfig)
        if field.name not in doc_text
    ]


def missing_fleet_knobs(doc_text: str = None) -> List[str]:
    """FleetConfig fields absent from docs/fleet.md (empty = ok).

    Same contract as the scaling-knob check: every fleet tuning knob
    must be named in its doc page before it ships.
    """
    import dataclasses

    from repro.fleet import FleetConfig

    if doc_text is None:
        doc_text = (REPO_ROOT / "docs" / "fleet.md").read_text()
    return [
        field.name for field in dataclasses.fields(FleetConfig)
        if field.name not in doc_text
    ]


def missing_symbols(doc_text: str = None) -> Dict[str, List[str]]:
    """Symbols absent from docs/api.md, keyed by module (empty = ok).

    Mention is a plain substring test: table cells list symbols
    verbatim, so a symbol rename that misses the docs fails loudly
    without requiring any markup discipline beyond "write the name".
    """
    if doc_text is None:
        doc_text = API_DOC.read_text()
    missing: Dict[str, List[str]] = {}
    for module_name in PUBLIC_MODULES:
        absent = [s for s in public_symbols(module_name) if s not in doc_text]
        if absent:
            missing[module_name] = absent
    return missing


def main() -> int:
    problems = missing_symbols()
    absent_docs = missing_docs()
    absent_knobs = [] if absent_docs else missing_scaling_knobs()
    absent_fleet_knobs = [] if absent_docs else missing_fleet_knobs()
    if (not problems and not absent_docs and not absent_knobs
            and not absent_fleet_knobs):
        total = sum(len(public_symbols(m)) for m in PUBLIC_MODULES)
        print(f"docs/api.md covers all {total} public symbols "
              f"of {', '.join(PUBLIC_MODULES)}; all {len(REQUIRED_DOCS)} "
              f"doc pages present; docs/scaling.md covers every "
              f"ServeConfig knob; docs/fleet.md covers every "
              f"FleetConfig knob")
        return 0
    for module_name, symbols in problems.items():
        print(f"docs/api.md is missing {len(symbols)} symbol(s) "
              f"from {module_name}.__all__: {', '.join(symbols)}",
              file=sys.stderr)
    for name in absent_docs:
        print(f"required doc page docs/{name} is missing", file=sys.stderr)
    for knob in absent_knobs:
        print(f"docs/scaling.md is missing ServeConfig knob {knob!r}",
              file=sys.stderr)
    for knob in absent_fleet_knobs:
        print(f"docs/fleet.md is missing FleetConfig knob {knob!r}",
              file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
