"""Bench (extension): offline tuning goes stale under input change."""

from benchmarks.conftest import emit
from repro.experiments import offline_vs_online


def test_offline_vs_online(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        offline_vs_online.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    # §I's claim: offline decisions fail when input behaviour shifts;
    # the online metric follows the executing behaviour.
    assert result.preference_flips() >= 3
    assert result.online_success() > result.offline_success()
    assert result.online_success() >= 0.8
    # The documented blind spot stays documented: Equake's flip is
    # invisible to a mix-anchored metric.
    equake = next(o for o in result.outcomes if o.name == "Equake")
    assert not equake.online_correct
    emit(results_dir, "offline_vs_online", result.render())
