"""Bench: regenerate Fig. 2 (speedup vs four conventional metrics)."""

from benchmarks.conftest import emit
from repro.experiments import fig02_naive_metrics


def test_fig02_naive_metrics(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig02_naive_metrics.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    # Paper: "no correlation between any of the four metrics and the
    # SMT speedup".
    for metric, stats in result.correlations.items():
        assert abs(stats["pearson"]) < 0.6, metric
    # Even with a best-fit oriented threshold (training accuracy!),
    # every conventional counter classifies worse than SMTsm.
    for metric, accuracy in result.fitted_accuracies.items():
        assert accuracy < result.smtsm_accuracy, metric
    emit(results_dir, "fig02_naive_metrics", result.render())
