"""Bench: regenerate Fig. 12 (metric measured at SMT1 breaks down, Nehalem)."""

from benchmarks.conftest import emit
from repro.experiments import fig10_nehalem, fig12_at_smt1_nehalem


def test_fig12_at_smt1_nehalem(benchmark, results_dir, nehalem_catalog_runs):
    result = benchmark.pedantic(
        fig12_at_smt1_nehalem.run, kwargs={"runs": nehalem_catalog_runs},
        rounds=1, iterations=1,
    )
    at2 = fig10_nehalem.run(runs=nehalem_catalog_runs)
    # Paper: "The experiments did not show a good correlation" at SMT1;
    # the fitted accuracy cannot beat the SMT2 measurement.
    assert result.success().success_rate <= at2.success().success_rate
    emit(results_dir, "fig12_at_smt1_nehalem", result.render())
