"""Bench (extension): metric accuracy from 8 to 32 cores."""

from benchmarks.conftest import emit
from repro.experiments import scaling_cores


def test_scaling_cores(benchmark, results_dir):
    result = benchmark.pedantic(
        scaling_cores.run, kwargs={"seed": 11}, rounds=1, iterations=1
    )
    rates = result.success_rates()
    losers = result.smt1_preferrers()
    # §IV-C trends, extended: the metric stays useful as the system
    # grows but gets no better, and more contention appears going from
    # one to two chips.  (Beyond 64 threads the model's saturating sync
    # laws flatten the loser population — see the experiment docstring.)
    assert rates[1] >= 0.89
    assert rates[4] >= 0.75
    assert rates[4] <= rates[1] + 1e-9
    assert rates[4] <= rates[2] + 1e-9
    assert losers[1] <= losers[2]
    # Lock-throughput-bound workloads keep losing at every scale.
    for chips, scatter in result.per_chips.items():
        by_name = {p.name: p for p in scatter.points}
        assert by_name["SPECjbb_contention"].speedup < 0.5, chips
        assert by_name["SSCA2"].speedup < 1.0, chips
    emit(results_dir, "scaling_cores", result.render())
