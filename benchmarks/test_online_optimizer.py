"""Bench: §V applied — the metric driving an online SMT optimizer."""

from benchmarks.conftest import emit
from repro.experiments import online_optimizer


def test_online_optimizer(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        online_optimizer.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    # The value proposition of §V: without knowing the workload, the
    # adaptive policy must clearly beat the system default (static
    # SMT4) and track the oracle best static level, which cannot be
    # known a priori.
    assert result.adaptive_wall < result.static_walls[4] * 0.8
    assert result.adaptive_wall < result.best_static_wall() * 1.3
    assert result.adaptive.n_switches >= 1
    emit(results_dir, "online_optimizer", result.render())
