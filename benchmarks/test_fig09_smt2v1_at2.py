"""Bench: regenerate Fig. 9 (SMT2/SMT1 vs SMTsm@SMT2 — partial predictability)."""

from benchmarks.conftest import emit
from repro.experiments import fig09_smt2v1_at2


def test_fig09_smt2v1_at2(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig09_smt2v1_at2.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    band = fig09_smt2v1_at2.ambiguous_band(result)
    # Paper: between 0.07 and 0.19 "it is not possible to predict".
    assert any(p.speedup >= 1.0 for p in band)
    assert any(p.speedup < 1.0 for p in band)
    # Above 0.19 the lower level wins.
    for p in result.points:
        if p.metric >= fig09_smt2v1_at2.UPPER_BOUND:
            assert p.speedup < 1.05, p.name
    emit(results_dir, "fig09_smt2v1_at2", result.render())
