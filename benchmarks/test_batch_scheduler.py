"""Bench (extension): SMTsm-guided batch scheduling vs static/oracle."""

from benchmarks.conftest import emit
from repro.experiments import batch_scheduler


def test_batch_scheduler(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        batch_scheduler.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    makespans = result.makespans()
    # The metric policy beats BOTH static policies and recovers most of
    # the oracle's advantage over the shipping default.
    assert makespans["smtsm"] < makespans["static-4"]
    assert makespans["smtsm"] < makespans["static-1"]
    assert makespans["smtsm"] < makespans["oracle"] * 1.15
    # Decisions are mixed, not degenerate: some jobs stay at SMT4, some
    # drop to SMT1.
    levels = {r.level for r in result.outcomes["smtsm"].records}
    assert {1, 4} <= levels
    emit(results_dir, "batch_scheduler", result.render())
