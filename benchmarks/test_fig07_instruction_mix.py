"""Bench: regenerate Fig. 7 (instruction-mix ladder of five benchmarks)."""

from benchmarks.conftest import emit
from repro.experiments import fig07_instruction_mix


def test_fig07_instruction_mix(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig07_instruction_mix.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    order = list(fig07_instruction_mix.BENCHMARKS)
    speedups = [result.speedups[n] for n in order]
    # Paper ladder: 1.82 -> 1.35 -> 0.86 -> 0.78 -> 0.25.
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[0] > 1.5 and speedups[-1] < 0.5
    assert result.deviations[order[-1]] == max(result.deviations.values())
    emit(results_dir, "fig07_instruction_mix", result.render())
