"""Ablation: fast (mean-value) engine vs cycle-accurate engine.

The experiment sweeps run on the closed-form fast engine; this bench
validates it against the operational cycle engine on a grid of
workload archetypes x SMT levels, checking that (a) throughput ranks
agree and (b) both engines order dispatch-held the same way across
workloads — the properties the metric actually depends on.
"""

from benchmarks.conftest import emit
from repro.analysis.correlation import spearman
from repro.arch import power7
from repro.sim.cycle_core import CycleCore
from repro.sim.fast_core import CoreInput, solve_core
from repro.util.tables import format_table
from repro.workloads.synthetic import (
    bandwidth_bound_workload,
    compute_bound_workload,
    make_stream,
    spin_bound_workload,
)

CYCLES = 6000

ARCHETYPES = {
    "compute": compute_bound_workload().stream,
    "bandwidth": bandwidth_bound_workload().stream,
    "locks": spin_bound_workload().stream,
    "fx-heavy": make_stream(loads=0.10, stores=0.05, branches=0.05, fx=0.75,
                            ilp=2.2, l1_mpki=1, l2_mpki=0.3, l3_mpki=0.05),
    "fp-thrash": make_stream(loads=0.28, stores=0.12, branches=0.03, fx=0.07,
                             ilp=2.0, l1_mpki=22, l2_mpki=10, l3_mpki=5,
                             locality_alpha=0.9, mlp=4.0),
}


def run_grid():
    arch = power7()
    rows = []
    fast_ipc, cycle_ipc, fast_dh, cycle_dh = [], [], [], []
    for name, stream in ARCHETYPES.items():
        for level in (1, 4):
            fast = solve_core(CoreInput(arch, level, tuple([stream] * level),
                                        threads_per_chip=level))
            cyc = CycleCore(arch, level, [stream] * level, seed=13).run(CYCLES)
            rows.append([name, level, fast.core_ipc, cyc.core_ipc,
                         fast.dispatch_held_fraction, cyc.dispatch_held_fraction])
            fast_ipc.append(fast.core_ipc)
            cycle_ipc.append(cyc.core_ipc)
            fast_dh.append(fast.dispatch_held_fraction)
            cycle_dh.append(cyc.dispatch_held_fraction)
    table = format_table(
        ["archetype", "SMT", "fast IPC", "cycle IPC", "fast dispHeld", "cycle dispHeld"],
        rows,
        title="Ablation: fast vs cycle engine agreement",
    )
    return (spearman(fast_ipc, cycle_ipc), spearman(fast_dh, cycle_dh)), table


def test_ablation_engines(benchmark, results_dir):
    (rho_ipc, rho_dh), table = benchmark.pedantic(run_grid, rounds=1, iterations=1)
    assert rho_ipc > 0.7
    assert rho_dh > 0.6
    emit(results_dir, "ablation_engines",
         table + f"\n\nspearman(IPC) = {rho_ipc:.2f}  spearman(dispHeld) = {rho_dh:.2f}")
