"""Bench (related work): Mathis et al.'s POWER5 SMT2 protocol (§VI)."""

from benchmarks.conftest import emit
from repro.experiments import related_mathis_power5


def test_related_mathis_power5(benchmark, results_dir):
    result = benchmark.pedantic(related_mathis_power5.run, rounds=1, iterations=1)
    gains = list(result.gains.values())
    # "most of the tested applications have a moderate performance
    # improvement with SMT"
    assert sum(1 for g in gains if 1.1 <= g <= 1.6) >= len(gains) * 0.7
    # "applications with the smallest improvement have more cache misses"
    assert result.correlation < -0.4
    emit(results_dir, "related_mathis_power5", result.render())
