"""Bench: regenerate Fig. 13 (two-chip SMT4/SMT1 vs SMTsm@SMT4)."""

from benchmarks.conftest import emit
from repro.experiments import fig06_smt4v1_at4, fig13_two_chip_41


def test_fig13_two_chip_41(benchmark, results_dir, p7_catalog_runs, p7x2_catalog_runs):
    result = benchmark.pedantic(
        fig13_two_chip_41.run, kwargs={"runs": p7x2_catalog_runs},
        rounds=1, iterations=1,
    )
    one_chip = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
    losers_two = sum(1 for p in result.points if p.speedup < 1.0)
    losers_one = sum(1 for p in one_chip.points if p.speedup < 1.0)
    # Paper §IV-C: "more applications prefer SMT1 over SMT4" at 16 cores,
    # while the metric remains useful (if less accurate).
    assert losers_two >= losers_one
    assert result.success().success_rate >= 0.75
    emit(results_dir, "fig13_two_chip_41", result.render())
