"""Bench (extension): hardware-thread priority shielding."""

from benchmarks.conftest import emit
from repro.experiments import priority_shielding


def test_priority_shielding(benchmark, results_dir):
    result = benchmark.pedantic(priority_shielding.run, rounds=1, iterations=1)
    prios = sorted(result.foreground_ipc)
    series = [result.foreground_ipc[p] for p in prios]
    # Foreground throughput rises monotonically with its priority...
    assert series == sorted(series)
    assert series[-1] > 1.5 * result.foreground_ipc[4]
    # ...never exceeds solo execution...
    assert series[-1] <= result.solo_ipc * 1.001
    # ...and the core's aggregate stays roughly conserved (priorities
    # redistribute capacity; they don't create it).
    core = [result.core_ipc[p] for p in prios]
    assert max(core) / min(core) < 1.2
    emit(results_dir, "ablation_priorities", result.render())
