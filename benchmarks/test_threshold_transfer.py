"""Bench (extension): threshold transferability to new apps/campaigns."""

from benchmarks.conftest import emit
from repro.experiments import threshold_transfer


def test_threshold_transfer(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        threshold_transfer.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    # §V's robustness claim: a wide optimal range means a new
    # application is unlikely to be mispredicted.
    assert result.loo_rate >= 0.85
    assert result.transfer_rate >= 0.85
    emit(results_dir, "threshold_transfer", result.render())
