"""Bench (extension): SMTsm threshold transfer to the ARM 2-way SMT chip."""

from benchmarks.conftest import emit
from repro.experiments import armsmt_transfer


def test_armsmt_transfer(benchmark, results_dir):
    result = benchmark.pedantic(
        armsmt_transfer.run, rounds=1, iterations=1,
    )
    # The transfer claim: both §V threshold methods land strictly
    # inside the observed metric range on an architecture the metric
    # was never calibrated on, and the fitted predictor is usefully
    # better than a coin flip.
    assert result.threshold_is_valid()
    summary = result.scatter.success()
    assert summary.n_total == 20
    assert summary.success_rate >= 0.75
    assert result.ppi_improvement_pct > 0.0
    emit(results_dir, "armsmt_transfer", result.render())
