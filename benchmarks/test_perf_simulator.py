"""Performance of the simulator itself.

The experiment harness leans on the fast engine being genuinely fast
(a full 28-benchmark x 3-level POWER7 campaign should take ~1 s).
These benchmarks time the hot paths with pytest-benchmark's real
statistics and assert floor throughputs so a performance regression
fails loudly rather than silently doubling every sweep.
"""

from repro.arch import power7
from repro.experiments.systems import p7_system
from repro.sim.chip import solve_chip
from repro.sim.cycle_core import CycleCore
from repro.sim.engine import RunSpec, simulate_run
from repro.sim.fast_core import CoreInput, solve_core
from repro.simos import NO_SYNC
from repro.simos.scheduler import place_threads
from repro.workloads import get_workload

EP = get_workload("EP")
EQUAKE = get_workload("Equake")


def test_perf_solve_core(benchmark):
    arch = power7()
    inp = CoreInput(arch, 4, tuple([EQUAKE.stream] * 4), threads_per_chip=32)
    result = benchmark(solve_core, inp)
    assert result.core_ipc > 0
    # The core solver is called O(10^3) times per campaign.
    assert benchmark.stats["mean"] < 0.01


def test_perf_solve_chip(benchmark):
    system = p7_system()
    placement = place_threads(system, 4, 32)
    result = benchmark(solve_chip, placement, EQUAKE.stream)
    assert result.aggregate_ipc > 0
    assert benchmark.stats["mean"] < 0.2


def test_perf_simulate_run(benchmark):
    system = p7_system()
    spec = RunSpec(system, 4, EQUAKE.stream, EQUAKE.sync, seed=1)
    result = benchmark(simulate_run, spec)
    assert result.wall_time_s > 0
    assert benchmark.stats["mean"] < 0.5


def test_perf_cycle_engine_throughput(benchmark):
    def window():
        core = CycleCore(power7(), 4, [EP.stream] * 4, seed=2)
        return core.run(1000, warmup=100)

    result = benchmark.pedantic(window, rounds=3, iterations=1)
    instrs = sum(result.instructions)
    rate = instrs / benchmark.stats["mean"]
    # Pure-Python pipeline: anything above 10k instructions/s is fine
    # for the validation windows it serves.
    assert rate > 1e4
