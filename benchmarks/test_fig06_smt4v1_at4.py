"""Bench: regenerate Fig. 6 (the headline SMT4/SMT1 vs SMTsm@SMT4 scatter)."""

from benchmarks.conftest import emit
from repro.experiments import fig06_smt4v1_at4


def test_fig06_smt4v1_at4(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig06_smt4v1_at4.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    summary = result.success(threshold=fig06_smt4v1_at4.PAPER_THRESHOLD)
    # Paper: 93% success at threshold ~0.07 on 28 benchmarks; every
    # above-threshold benchmark prefers SMT1; the only misses are
    # below-threshold points "performing slightly worse at SMT4".
    assert summary.n_total == 28
    assert summary.success_rate >= 0.89
    assert not summary.right_misses
    emit(results_dir, "fig06_smt4v1_at4", result.render(threshold=0.07))
