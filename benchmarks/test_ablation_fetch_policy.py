"""Ablation (extension): SMT fetch policy under partitioned queues.

Tullsen's ICOUNT fetch heuristic famously beats round-robin on cores
with *shared* issue queues, where a stalled thread's instructions clog
the whole window.  POWER7-style cores partition the queue per thread
(and a thread whose decode buffer is full simply loses its fetch turn),
which removes the clogging channel — so the two policies should land
within noise of each other.  This ablation verifies that insensitivity
on the operational cycle engine: a *negative result by design*, and a
structural sanity check that the partitioning actually isolates
threads.
"""

from benchmarks.conftest import emit
from repro.arch import power7
from repro.sim.cycle_core import CycleCore
from repro.util.tables import format_table
from repro.workloads.synthetic import (
    bandwidth_bound_workload,
    compute_bound_workload,
    make_stream,
)

CYCLES = 6000

MIXES = {
    "4x compute": [compute_bound_workload().stream] * 4,
    "1 memory + 3 compute": [bandwidth_bound_workload().stream]
    + [compute_bound_workload().stream] * 3,
    "2 memory + 2 compute": [bandwidth_bound_workload().stream] * 2
    + [compute_bound_workload().stream] * 2,
    "1 pointer-chase + 3 compute": [
        make_stream(loads=0.35, stores=0.05, branches=0.1, fx=0.3,
                    ilp=1.0, l1_mpki=30, l2_mpki=20, l3_mpki=8,
                    locality_alpha=0.2, mlp=1.5)
    ] + [compute_bound_workload().stream] * 3,
}


def run_grid():
    rows = []
    gains = {}
    compute_share = {}
    for name, streams in MIXES.items():
        rr = CycleCore(power7(), 4, streams, seed=17,
                       fetch_policy="round_robin").run(CYCLES)
        ic = CycleCore(power7(), 4, streams, seed=17,
                       fetch_policy="icount").run(CYCLES)
        gain = ic.core_ipc / rr.core_ipc
        gains[name] = gain
        compute_share[name] = (
            sum(rr.instructions[1:]) / max(sum(rr.instructions), 1)
        )
        rows.append([name, rr.core_ipc, ic.core_ipc, gain])
    table = format_table(
        ["thread mix", "round-robin IPC", "ICOUNT IPC", "ICOUNT gain"],
        rows,
        title="Ablation: SMT fetch policy under partitioned issue queues "
              "(cycle engine, POWER7 SMT4)",
    )
    return gains, compute_share, table


def test_ablation_fetch_policy(benchmark, results_dir):
    gains, compute_share, table = benchmark.pedantic(
        run_grid, rounds=1, iterations=1
    )
    # Partitioned queues neutralize the fetch policy: both within 3%
    # on every mix — including the clog-prone ones ICOUNT was invented
    # for.  (On a shared-queue core this gap would be large.)
    for name, gain in gains.items():
        assert 0.97 < gain < 1.03, (name, gain)
    # And the isolation itself: even with a stalled co-runner, the
    # compute threads keep the bulk of the throughput under plain RR.
    assert compute_share["1 memory + 3 compute"] > 0.7
    emit(results_dir, "ablation_fetch_policy",
         table + "\n\nresult: partitioned per-thread queue shares make the "
         "fetch policy immaterial (clogging is impossible), unlike the "
         "shared-queue cores ICOUNT was designed for.")
