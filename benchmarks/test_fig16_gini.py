"""Bench: regenerate Fig. 16 (Gini impurity vs separator)."""

from benchmarks.conftest import emit
from repro.experiments import fig16_gini


def test_fig16_gini(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig16_gini.run, kwargs={"runs": p7_catalog_runs}, rounds=1, iterations=1
    )
    # Paper: lowest impurity 0.23 with a usable optimal range near 0.07.
    # The simulator's scatter is cleaner than real hardware, so we bound
    # from above and require the range to sit in the right region.
    assert result.min_impurity < 0.25
    lo, hi = result.best_range
    assert 0.02 < lo <= hi < 0.2
    emit(results_dir, "fig16_gini", result.render())
