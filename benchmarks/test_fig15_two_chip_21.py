"""Bench: regenerate Fig. 15 (two-chip SMT2/SMT1 — prediction ineffective)."""

from benchmarks.conftest import emit
from repro.experiments import fig15_two_chip_21


def test_fig15_two_chip_21(benchmark, results_dir, p7x2_catalog_runs):
    result = benchmark.pedantic(
        fig15_two_chip_21.run, kwargs={"runs": p7x2_catalog_runs},
        rounds=1, iterations=1,
    )
    # Paper: "SMT2/SMT1 prediction is ineffective, the same as in the
    # single chip case" — below-threshold losers exist.
    fitted = result.fit_predictor()
    below = [p for p in result.points if p.metric <= fitted.threshold]
    assert any(p.speedup < 1.0 for p in below)
    emit(results_dir, "fig15_two_chip_21", result.render())
