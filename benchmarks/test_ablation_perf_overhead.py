"""Ablation: how much perf-sampling overhead can the online metric absorb?

The reproduction band for this paper flags the practical issue with a
userspace implementation: SMTsm has to be read via something like
``perf stat``, whose fork/exec+read cost both slows the application and
pollutes the counters with the tool's own instructions.  This bench
sweeps the per-sample overhead and reports (a) the application slowdown
and (b) the relative error in the measured SMTsm — showing where the
online metric stops being trustworthy.
"""

from benchmarks.conftest import emit
from repro.core.metric import smtsm
from repro.counters.perfstat import PerfStat, PerfStatConfig
from repro.experiments.systems import p7_system
from repro.sim.online import SteadyApp
from repro.util.tables import format_table
from repro.workloads import get_workload

INTERVAL_S = 0.1
DURATION_S = 2.0
#: Per-sample overheads from "free" to "pathological" (seconds).
OVERHEADS = (0.0, 0.001, 0.01, 0.05, 0.2)
#: perf's own instructions per sample, scaled with its runtime cost.
TOOL_INSTRUCTIONS_PER_SECOND = 2e9


def run_sweep():
    system = p7_system()
    spec = get_workload("SSCA2")  # a near-threshold workload: errors matter
    rows = []
    errors = {}
    baseline = None
    for overhead in OVERHEADS:
        app = SteadyApp(system, 4, spec, seed=7)
        cfg = PerfStatConfig(
            interval_s=INTERVAL_S,
            overhead_per_sample_s=overhead,
            tool_instructions_per_sample=overhead * TOOL_INSTRUCTIONS_PER_SECOND,
        )
        readings = PerfStat(cfg).measure(app, DURATION_S)
        values = [smtsm(r.sample).value for r in readings]
        mean_metric = sum(values) / len(values)
        if baseline is None:
            baseline = mean_metric
        rel_error = abs(mean_metric - baseline) / baseline
        errors[overhead] = rel_error
        rows.append([overhead * 1e3, cfg.overhead_fraction * 100, len(readings),
                     mean_metric, rel_error * 100])
    table = format_table(
        ["overhead/sample (ms)", "time stolen (%)", "samples",
         "mean SMTsm", "metric error (%)"],
        rows,
        title=f"Ablation: perf-stat overhead vs online SMTsm fidelity "
              f"(SSCA2 @SMT4, {INTERVAL_S * 1e3:.0f} ms interval)",
    )
    return errors, table


def test_ablation_perf_overhead(benchmark, results_dir):
    errors, table = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    # Light overhead must leave the metric essentially intact...
    assert errors[0.001] < 0.01
    # ...heavy overhead visibly distorts it (counter pollution dilutes
    # the mix-deviation factor) — enough to flip near-threshold
    # decisions like SSCA2's...
    assert errors[0.2] > errors[0.001]
    assert errors[0.2] > 0.02
    # ...and, independent of metric fidelity, the dominant cost is the
    # stolen wall time: at 200 ms/sample on a 100 ms interval the tool
    # consumes two thirds of the machine.
    from repro.counters.perfstat import PerfStatConfig
    worst = PerfStatConfig(interval_s=INTERVAL_S, overhead_per_sample_s=OVERHEADS[-1])
    assert worst.overhead_fraction > 0.5
    emit(results_dir, "ablation_perf_overhead", table)
