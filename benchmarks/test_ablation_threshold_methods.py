"""Ablation: Gini-impurity vs PPI threshold selection (§V-A vs §V-B).

The paper argues PPI "can also provide a better threshold than the Gini
impurity method in some cases, because Gini impurity does not consider
the amount of speedup".  This bench fits both on the Fig. 6 data and
compares classification accuracy *and* the realized performance
improvement from following each threshold.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis.success import success_summary
from repro.core.predictor import SmtPredictor
from repro.experiments import fig06_smt4v1_at4
from repro.util.tables import format_table


def realized_improvement_pct(points, threshold):
    """Mean actual improvement from switching above-threshold points down."""
    gains = [
        (1.0 / p.speedup - 1.0) * 100.0 if p.metric > threshold else 0.0
        for p in points
    ]
    return float(np.mean(gains))


def run_comparison(runs):
    scatter = fig06_smt4v1_at4.run(runs=runs)
    obs = scatter.observations()
    rows = []
    outcomes = {}
    for method in ("gini", "ppi"):
        predictor = SmtPredictor.fit(obs, high_level=4, low_level=1, method=method)
        summary = success_summary(predictor, obs)
        improvement = realized_improvement_pct(scatter.points, predictor.threshold)
        rows.append([method, predictor.threshold, summary.success_rate, improvement])
        outcomes[method] = (summary, improvement)
    table = format_table(
        ["method", "threshold", "success rate", "realized improvement (%)"],
        rows,
        title="Ablation: Gini vs PPI threshold selection (Fig. 6 data)",
    )
    return outcomes, table


def test_ablation_threshold_methods(benchmark, results_dir, p7_catalog_runs):
    outcomes, table = benchmark.pedantic(
        run_comparison, args=(p7_catalog_runs,), rounds=1, iterations=1
    )
    gini, ppi = outcomes["gini"], outcomes["ppi"]
    # Both methods must produce usable thresholds on this data...
    assert gini[0].success_rate >= 0.85
    assert ppi[0].success_rate >= 0.85
    # ...and both deliver the paper's headline improvement.
    assert gini[1] > 15.0
    assert ppi[1] > 15.0
    emit(results_dir, "ablation_threshold_methods", table)
