"""Ablation: what does each SMTsm factor contribute?

Eq. 1 multiplies three factors — instruction-mix deviation,
dispatch-held fraction, and the wall/CPU scalability ratio.  The paper
motivates each separately (§II); this ablation quantifies them by
dropping one factor at a time, refitting the threshold, and comparing
prediction accuracy on the Fig. 6 data.
"""

import itertools

from benchmarks.conftest import emit
from repro.analysis.success import success_summary
from repro.core.predictor import Observation, SmtPredictor
from repro.experiments import fig06_smt4v1_at4
from repro.util.tables import format_table

FACTORS = ("mix_deviation", "dispatch_held", "scalability_ratio")


def ablated_metric(detail, dropped):
    value = 1.0
    for factor in FACTORS:
        if factor != dropped:
            value *= getattr(detail, factor)
    return value


def accuracy_with_factors(points, dropped=None):
    obs = [
        Observation(p.name, ablated_metric(p.metric_detail, dropped), p.speedup)
        for p in points
    ]
    predictor = SmtPredictor.fit(obs, high_level=4, low_level=1)
    return success_summary(predictor, obs)


def run_ablation(runs):
    scatter = fig06_smt4v1_at4.run(runs=runs)
    rows = []
    full = accuracy_with_factors(scatter.points, dropped=None)
    rows.append(["full SMTsm", full.success_rate, full.threshold, len(full.misses)])
    results = {"full": full}
    for factor in FACTORS:
        summary = accuracy_with_factors(scatter.points, dropped=factor)
        rows.append([f"without {factor}", summary.success_rate,
                     summary.threshold, len(summary.misses)])
        results[factor] = summary
    table = format_table(
        ["variant", "success rate", "fitted threshold", "misses"],
        rows,
        title="Ablation: SMTsm factor contributions (Fig. 6 data)",
    )
    return results, table


def test_ablation_factors(benchmark, results_dir, p7_catalog_runs):
    results, table = benchmark.pedantic(
        run_ablation, args=(p7_catalog_runs,), rounds=1, iterations=1
    )
    full_rate = results["full"].success_rate
    assert full_rate >= 0.89
    # No single-factor removal may *beat* the full metric, and at least
    # one factor must be strictly load-bearing.  (On this benchmark set
    # the dispatch-held factor carries most of the separation — which
    # matches the paper's own emphasis on it "indirectly capturing ILP
    # and cache-miss effects"; the other factors buy robustness on the
    # near-threshold points.)
    ablated_rates = {f: results[f].success_rate for f in FACTORS}
    assert all(rate <= full_rate for rate in ablated_rates.values()), ablated_rates
    assert min(ablated_rates.values()) < full_rate, ablated_rates
    emit(results_dir, "ablation_factors", table)
