"""Bench: regenerate Table I (the benchmark catalog)."""

from benchmarks.conftest import emit
from repro.experiments import table1
from repro.workloads.catalog import POWER7_SET


def test_table1_catalog(benchmark, results_dir):
    text = benchmark.pedantic(table1.run, rounds=1, iterations=1)
    for label in POWER7_SET:
        assert label in text
    emit(results_dir, "table1_catalog", text)
