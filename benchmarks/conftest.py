"""Benchmark-harness fixtures.

Each benchmark regenerates one paper table/figure end-to-end (catalog
simulation + metric + analysis), asserts the paper's qualitative shape,
and writes the rendered rows/series to ``results/<name>.txt`` so the
output survives pytest's capture.  Catalog runs are shared per session
where a figure is a pure projection of the same runs.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.systems import nehalem_runs, p7_runs

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def p7_catalog_runs():
    return p7_runs(seed=11)


@pytest.fixture(scope="session")
def p7x2_catalog_runs():
    return p7_runs(n_chips=2, seed=11)


@pytest.fixture(scope="session")
def nehalem_catalog_runs():
    return nehalem_runs(seed=11)


def emit(results_dir: Path, name: str, text: str) -> None:
    """Print a rendered experiment and persist it."""
    print()
    print(text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
