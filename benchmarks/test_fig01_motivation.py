"""Bench: regenerate Fig. 1 (SMT1 vs SMT4 for Equake, MG, EP)."""

from benchmarks.conftest import emit
from repro.experiments import fig01_motivation


def test_fig01_motivation(benchmark, results_dir):
    result = benchmark.pedantic(
        fig01_motivation.run, kwargs={"seed": 11}, rounds=1, iterations=1
    )
    norm = result.normalized
    # Paper: Equake degraded, MG oblivious, EP improved (Fig. 1).
    assert norm["Equake"][4] < 0.7
    assert 0.85 < norm["MG"][4] < 1.15
    assert norm["EP"][4] > 1.6
    emit(results_dir, "fig01_motivation", result.render())
