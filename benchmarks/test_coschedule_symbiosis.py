"""Bench (extension): mix-guided co-scheduling vs random/adversarial."""

from benchmarks.conftest import emit
from repro.experiments import coschedule_symbiosis


def test_coschedule_symbiosis(benchmark, results_dir):
    result = benchmark.pedantic(
        coschedule_symbiosis.run, kwargs={"seed": 11}, rounds=1, iterations=1
    )
    # The ideal-mix principle must order the policies: guided pairing
    # beats the random average, which beats the adversarial pairing.
    assert result.guided.weighted_speedup >= result.random_mean
    assert result.random_mean > result.adversarial.weighted_speedup
    # Co-running costs something: per-job efficiency below 1, above 0.5.
    assert 0.5 < result.guided.avg_symbiosis <= 1.05
    emit(results_dir, "coschedule_symbiosis", result.render())
