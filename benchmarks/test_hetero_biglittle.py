"""Bench (extension): per-cluster SMTsm on the 4+4 big/little chip."""

from benchmarks.conftest import emit
from repro.experiments import hetero_biglittle


def test_hetero_biglittle(benchmark, results_dir):
    result = benchmark.pedantic(
        hetero_biglittle.run, rounds=1, iterations=1,
    )
    # Asymmetric ceilings: the metric must make the SMT4-vs-SMT1 call
    # on the big cluster and the SMT2-vs-SMT1 call on the little one,
    # each from that cluster's own counters.
    per_workload = result.predicted_vs_best()
    for cluster in ("big", "little"):
        assert result.threshold_is_valid(cluster)
        n = len(result.scatters[cluster].points)
        hits = sum(1 for rows in per_workload.values()
                   if cluster in rows
                   and rows[cluster][0] == rows[cluster][1])
        assert n == 20
        assert hits / n >= 0.8
    # The interesting transfer fact: at least one workload prefers a
    # different SMT level on the two clusters.
    split = [name for name, rows in per_workload.items()
             if "big" in rows and "little" in rows
             and rows["big"][1] != rows["little"][1]]
    assert split
    emit(results_dir, "hetero_biglittle", result.render())
