"""Bench: regenerate Fig. 10 (Nehalem SMT2/SMT1 vs SMTsm@SMT2)."""

from benchmarks.conftest import emit
from repro.experiments import fig10_nehalem


def test_fig10_nehalem(benchmark, results_dir, nehalem_catalog_runs):
    result = benchmark.pedantic(
        fig10_nehalem.run, kwargs={"runs": nehalem_catalog_runs},
        rounds=1, iterations=1,
    )
    summary = result.success()
    # Paper: 86% success on 21 benchmarks; Streamcluster is the
    # far-right outlier that still prefers SMT2 (§IV-A).
    assert summary.n_total == 21
    assert summary.success_rate >= 0.80
    rightmost = max(result.points, key=lambda p: p.metric)
    assert rightmost.name == fig10_nehalem.OUTLIER
    assert rightmost.speedup > 1.0
    emit(results_dir, "fig10_nehalem", result.render())
