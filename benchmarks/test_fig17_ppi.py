"""Bench: regenerate Fig. 17 (average PPI vs threshold)."""

from benchmarks.conftest import emit
from repro.experiments import fig17_ppi


def test_fig17_ppi(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig17_ppi.run, kwargs={"runs": p7_catalog_runs}, rounds=1, iterations=1
    )
    # Paper: peak average improvement >20%, and "a large range of
    # potential threshold values where we have an average PPI that is
    # greater than 15%".
    assert result.best_improvement_pct > 15.0
    lo, hi = result.plateau
    assert hi - lo > 0.05
    emit(results_dir, "fig17_ppi", result.render())
