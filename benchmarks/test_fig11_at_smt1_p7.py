"""Bench: regenerate Fig. 11 (metric measured at SMT1 breaks down, POWER7)."""

from benchmarks.conftest import emit
from repro.core.thresholds import optimal_threshold_range
from repro.experiments import fig06_smt4v1_at4, fig11_at_smt1_p7


def test_fig11_at_smt1_p7(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig11_at_smt1_p7.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    at4 = fig06_smt4v1_at4.run(runs=p7_catalog_runs)
    _, _, gini1 = optimal_threshold_range(result.metrics(), result.speedups())
    _, _, gini4 = optimal_threshold_range(at4.metrics(), at4.speedups())
    # Paper §IV-B: "the metric breaks down at SMT1" — no separator
    # classifies the SMT1-measured data anywhere near as cleanly.
    assert gini1 > 2 * gini4
    emit(results_dir, "fig11_at_smt1_p7",
         result.render() + f"\n\nbest-gini impurity @SMT1 = {gini1:.3f} "
         f"(vs {gini4:.3f} @SMT4)")
