"""Bench: regenerate Fig. 14 (two-chip SMT4/SMT2 vs SMTsm@SMT4)."""

from benchmarks.conftest import emit
from repro.experiments import fig13_two_chip_41, fig14_two_chip_42


def test_fig14_two_chip_42(benchmark, results_dir, p7x2_catalog_runs):
    result = benchmark.pedantic(
        fig14_two_chip_42.run, kwargs={"runs": p7x2_catalog_runs},
        rounds=1, iterations=1,
    )
    s13 = fig13_two_chip_41.run(runs=p7x2_catalog_runs).success()
    s14 = result.success()
    # Paper: "The SMT4/SMT2 results look better than the SMT4/SMT1
    # results" — the thread-count change between levels is smaller.
    assert s14.success_rate >= s13.success_rate - 0.05
    emit(results_dir, "fig14_two_chip_42", result.render())
