"""Bench: regenerate Fig. 8 (SMT4/SMT2 vs SMTsm@SMT4)."""

from benchmarks.conftest import emit
from repro.experiments import fig08_smt4v2_at4


def test_fig08_smt4v2_at4(benchmark, results_dir, p7_catalog_runs):
    result = benchmark.pedantic(
        fig08_smt4v2_at4.run, kwargs={"runs": p7_catalog_runs},
        rounds=1, iterations=1,
    )
    # Paper: "All of the benchmarks with a metric greater than the
    # threshold prefer SMT2"; left-side losers stay above 0.9.
    for p in result.points:
        if p.metric > fig08_smt4v2_at4.PAPER_THRESHOLD:
            assert p.speedup < 1.05, p.name
        elif p.speedup < 1.0:
            assert p.speedup > 0.9, p.name
    emit(results_dir, "fig08_smt4v2_at4", result.render(threshold=0.07))
