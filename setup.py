"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP 517
editable installs fail; this shim lets ``pip install -e .`` use the
legacy ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
